// Determinism-pass fixtures: positives and negatives for det-unordered-iter,
// det-wallclock, det-rng and det-fp-reassoc. The per-file nondet rule also
// patrols wall-clock and RNG idents under src/, so its overlaps carry
// `allow(nondet)` -- the expectations below pin the det pass alone.
#include <ctime>
#include <random>
#include <unordered_map>
#include <vector>

namespace corpus {

struct Table {
  std::unordered_map<int, double> cells;
  std::vector<double> ordered;
};

// Positive: range-for over an unordered member, two hops below the root.
double sum_cells(const Table& t) {
  double acc = 0.0;
  for (const auto& kv : t.cells) acc = acc + kv.second;
  return acc;
}

// Positive: explicit .begin() on an unordered name.
int probe_cells(const Table& t) { return t.cells.begin()->first; }

// Negative: iterating the vector sibling is deterministic.
double sum_ordered(const Table& t) {
  double acc = 0.0;
  for (const double v : t.ordered) acc = acc + v;
  return acc;
}

// Positive: wall-clock read one hop below the root.
double helper_stamp() {
  return static_cast<double>(time(nullptr));  // rbs-lint: allow(nondet)
}

// Positives: ambient RNG and a default-seeded engine.
int draw_ambient() {
  std::mt19937 engine;  // rbs-lint: allow(nondet)
  (void)engine;
  return rand();  // rbs-lint: allow(nondet)
}

// Negative: a seeded engine follows the per-item-stream discipline.
int draw_seeded(unsigned seed) {
  std::mt19937 engine(seed);  // rbs-lint: allow(nondet)
  return static_cast<int>(engine());
}

struct Pool {
  void submit(int job);
};

struct Gather {
  Pool* pool_;
  double reduce(int jobs);
};

// Positive: floating-point accumulation inside submit(...) reduces in
// completion order.
RBS_DET_PATH double Gather::reduce(int jobs) {
  double acc = 0.0;
  for (int j = 0; j < jobs; ++j) pool_->submit(static_cast<int>(acc += 1.0));
  return acc;
}

// The root: everything transitively called above is on the audited surface.
RBS_DET_PATH double root_report(const Table& t, unsigned seed) {
  return sum_cells(t) + probe_cells(t) + sum_ordered(t) + helper_stamp() +
         draw_ambient() + draw_seeded(seed);
}

// Negative: RBS_DET_SAFE is an audited leaf -- the walk stops here.
RBS_DET_SAFE double audited_leaf(const Table& t) {
  double acc = 0.0;
  for (const auto& kv : t.cells) acc = acc + kv.second;
  return acc;
}
RBS_DET_PATH double root_with_leaf(const Table& t) { return audited_leaf(t); }

// Negative: a justified escape shields its body.
RBS_DET_ESCAPE(arming_timestamp_never_in_output) double armed_deadline() {
  return static_cast<double>(time(nullptr));  // rbs-lint: allow(nondet)
}
RBS_DET_PATH double root_with_escape() { return armed_deadline(); }

// Positive: an escape without a reason is reported and ignored.
RBS_DET_ESCAPE double naked_escape() { return 0.0; }

// Negative: unordered iteration with no det root above it is out of scope.
double unreachable_sum(const Table& t) {
  double acc = 0.0;
  for (const auto& kv : t.cells) acc = acc + kv.second;
  return acc;
}

// Negative: suppression comment silences a det finding like any other rule.
RBS_DET_PATH double root_suppressed(const Table& t) {
  double acc = 0.0;
  // rbs-lint: allow(det-unordered-iter)
  for (const auto& kv : t.cells) acc = acc + kv.second;
  return acc;
}

}  // namespace corpus

// Fixture: false-positive guards -- patterns every rule must leave alone.
#include <string>

namespace rbs {
inline bool ordered(double a, double b) { return a <= b; }
inline bool int_eq(int version) { return version == 2; }
inline double coarse_step() { return 1e-3; }
inline std::string doc() { return "tested x == 1.0 with slack 1e-9"; }

struct Stats {
  double clock = 0.0;  // a data member named like the banned call
};
inline double member_access(const Stats& stats) { return stats.clock; }
}  // namespace rbs

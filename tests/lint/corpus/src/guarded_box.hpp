// Cross-file half of the lock-discipline fixture: the guarded member is
// declared here; guarded_box_bad.cpp violates it through include resolution.
#pragma once

#include <vector>

#include "support/thread_annotations.hpp"

namespace corpus {

class GuardedBox {
 public:
  void put(int v);
  void drain_unlocked();

 private:
  rbs::Mutex mutex_;
  std::vector<int> items_ RBS_GUARDED_BY(mutex_);
};

}  // namespace corpus

// Cross-file lock-discipline fixture: the RBS_GUARDED_BY declaration lives
// in guarded_box.hpp; the analyzer must resolve the quoted include.
#include "guarded_box.hpp"

namespace corpus {

void GuardedBox::put(int v) {
  const rbs::LockGuard lock(mutex_);
  items_.push_back(v);  // ok
}

void GuardedBox::drain_unlocked() {
  items_.clear();  // violation: guarded member from the header, no guard live
}

}  // namespace corpus

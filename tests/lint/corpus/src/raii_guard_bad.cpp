// raii-guard fixture: manual lock management vs the RAII idiom.
#include <mutex>

class Counter {
 public:
  void bump_bad() {
    mutex_.lock();  // violation: an early return would leak the lock
    ++count_;
    mutex_.unlock();  // violation
  }

  void bump_ok() {
    const std::lock_guard<std::mutex> lock(mutex_);
    ++count_;
  }

 private:
  std::mutex mutex_;
  int count_ = 0;
};

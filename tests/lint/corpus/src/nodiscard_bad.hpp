// Fixture: nodiscard must fire on Status/Expected returns lacking the
// attribute; annotated declarations stay silent.
#pragma once

#include <string>

namespace rbs {
class Status;
template <typename T>
class Expected;

Status validate(int ticks);
Expected<double> parse_speed(const std::string& text);
[[nodiscard]] Status checked_validate(int ticks);
[[nodiscard]] Expected<double> checked_parse(const std::string& text);
}  // namespace rbs

// Fixture: include-hygiene -- missing #pragma once, <bits/stdc++.h>,
// a duplicate include, and using-namespace in a header.
#include <bits/stdc++.h>
#include <vector>
#include <vector>

namespace rbs {
using namespace std;
inline int count_jobs() { return 0; }
}  // namespace rbs

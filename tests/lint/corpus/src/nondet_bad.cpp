// Fixture: nondet must fire in src/ on wall-clock reads and unseeded
// randomness.
#include <cstdlib>
#include <ctime>
#include <random>

namespace rbs {
inline int draw() { return std::rand(); }
inline long stamp() { return static_cast<long>(std::time(nullptr)); }
inline unsigned seed_from_entropy() {
  std::random_device rd;
  return rd();
}
inline unsigned raw_engine_outside_rng_home() {
  std::mt19937 engine;
  return engine();
}
}  // namespace rbs

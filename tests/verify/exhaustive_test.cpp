// Tests for the exhaustive pattern explorer.
#include "verify/exhaustive.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/edf.hpp"
#include "core/speedup.hpp"
#include "gen/paper_examples.hpp"

namespace rbs {
namespace {

TEST(ExhaustiveTest, SafeAtSminOnTable1) {
  // Theorem 2's guarantee, checked against every enumerated pattern.
  ExploreOptions options;
  options.horizon = 22.0;
  const ExploreResult r = explore_patterns(table1_base(), 4.0 / 3.0, options);
  EXPECT_GT(r.patterns_tested, 1000u);
  EXPECT_EQ(r.patterns_missed, 0u);
  EXPECT_FALSE(r.budget_exhausted);
  EXPECT_TRUE(r.witness.empty());
}

TEST(ExhaustiveTest, FindsMissBelowTrueNeed) {
  // At s = 0.9 the synchronous all-overrun pattern already misses.
  ExploreOptions options;
  options.horizon = 22.0;
  const ExploreResult r = explore_patterns(table1_base(), 0.9, options);
  EXPECT_GT(r.patterns_missed, 0u);
  ASSERT_EQ(r.witness.size(), 2u);
  // The witness replays to a miss.
  sim::SimConfig cfg;
  cfg.horizon = options.horizon;
  cfg.hi_speed = 0.9;
  cfg.scripted_arrivals = r.witness;
  EXPECT_TRUE(sim::simulate(table1_base(), cfg).deadline_missed());
}

TEST(ExhaustiveTest, LowerBoundBracketsSmin) {
  // The exhaustive adversary's necessity bound must sit at or below s_min,
  // and for Table I it should reach 1.0 (the reachable worst case needs
  // exactly unit speed: 4 work units due within 4 ticks of the switch).
  const double lower =
      exhaustive_speedup_lower_bound(table1_base(), /*ceiling=*/1.5, /*step=*/0.125);
  const double s_min = min_speedup_value(table1_base());
  EXPECT_LE(lower, s_min + 1e-12);
  EXPECT_GE(lower, 0.875);  // at least the near-unit-speed miss is found
}

TEST(ExhaustiveTest, BudgetStopsEnumeration) {
  ExploreOptions options;
  options.horizon = 22.0;
  options.max_patterns = 50;
  const ExploreResult r = explore_patterns(table1_base(), 2.0, options);
  EXPECT_LE(r.patterns_tested, 51u);
  EXPECT_TRUE(r.budget_exhausted);
}

TEST(ExhaustiveTest, PurelyLoSetHasSingleDemandChoice) {
  // Two LO tasks: only arrival jitter is enumerated; everything meets
  // deadlines on this trivially schedulable set.
  const TaskSet set({McTask::lo("a", 1, 6, 6), McTask::lo("b", 1, 8, 8)});
  ExploreOptions options;
  options.horizon = 18.0;
  const ExploreResult r = explore_patterns(set, 1.0, options);
  EXPECT_GT(r.patterns_tested, 0u);
  EXPECT_EQ(r.patterns_missed, 0u);
}

TEST(ExhaustiveTest, OverloadCaughtBelowSminSafeAtSmin) {
  // LO-schedulable but HI-heavy (U_HI = 1.8): under-speed misses must be
  // found, while s_min is exhaustively safe.
  const TaskSet set({McTask::hi("a", 1, 4, 2, 4, 4), McTask::hi("b", 1, 4, 3, 5, 5)});
  ASSERT_TRUE(lo_mode_schedulable(set));
  const double s_min = min_speedup_value(set);
  ASSERT_TRUE(std::isfinite(s_min));

  ExploreOptions options;
  options.horizon = 12.0;
  options.first_release_max = 1;
  const ExploreResult bad = explore_patterns(set, 1.0, options);
  EXPECT_GT(bad.patterns_missed, 0u);
  const ExploreResult ok = explore_patterns(set, s_min, options);
  EXPECT_EQ(ok.patterns_missed, 0u);
}

}  // namespace
}  // namespace rbs

// Tests for the synthetic task-set generator and the FMS model.
#include "gen/taskgen.hpp"

#include <gtest/gtest.h>

#include "core/edf.hpp"
#include "gen/fms.hpp"
#include "gen/rng.hpp"

namespace rbs {
namespace {

TEST(RngTest, DeterministicBySeed) {
  Rng a(123), b(123), c(124);
  const double va = a.uniform(0.0, 1.0);
  EXPECT_DOUBLE_EQ(va, b.uniform(0.0, 1.0));
  EXPECT_NE(va, c.uniform(0.0, 1.0));
}

TEST(RngTest, UniformIntRange) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
  }
}

TEST(RngTest, LogUniformTicksInRange) {
  Rng rng(2);
  bool low_decade = false, high_decade = false;
  for (int i = 0; i < 2000; ++i) {
    const Ticks v = rng.log_uniform_ticks(20, 20000);
    EXPECT_GE(v, 20);
    EXPECT_LE(v, 20000);
    low_decade |= v < 200;
    high_decade |= v > 2000;
  }
  // Log-uniform must populate both ends of the three-decade range.
  EXPECT_TRUE(low_decade);
  EXPECT_TRUE(high_decade);
}

TEST(TaskGenTest, HitsUtilizationWindow) {
  Rng rng(3);
  GenParams params;
  for (double u : {0.3, 0.5, 0.7, 0.9}) {
    params.u_bound = u;
    int generated = 0;
    for (int trial = 0; trial < 10; ++trial) {
      const auto set = generate_task_set(params, rng);
      if (!set) continue;
      ++generated;
      // Rounding C(LO) to ticks can nudge the metric slightly past the
      // acceptance window; allow a small extra slack.
      EXPECT_NEAR(system_utilization(*set), u, params.tolerance + 0.01) << "u=" << u;
    }
    EXPECT_GT(generated, 5) << "u=" << u;
  }
}

TEST(TaskGenTest, ParameterRangesRespected) {
  Rng rng(4);
  GenParams params;
  params.u_bound = 0.8;
  const auto set = generate_task_set(params, rng);
  ASSERT_TRUE(set.has_value());
  EXPECT_GE(set->size(), 2u);
  for (const ImplicitTask& t : set->tasks()) {
    EXPECT_GE(t.period, params.period_min);
    EXPECT_LE(t.period, params.period_max);
    EXPECT_GE(t.c_lo, 1);
    EXPECT_LE(t.c_hi, t.period);
    EXPECT_GE(t.c_hi, t.c_lo);
    if (t.criticality == Criticality::LO) EXPECT_EQ(t.c_hi, t.c_lo);
    // gamma <= 3 up to rounding of C(LO) and the C(HI) <= T clamp.
    if (t.criticality == Criticality::HI)
      EXPECT_LE(static_cast<double>(t.c_hi) / static_cast<double>(t.c_lo), 3.0 + 1.0);
  }
}

TEST(TaskGenTest, ProducesBothCriticalities) {
  Rng rng(6);
  GenParams params;
  params.u_bound = 0.9;
  bool saw_hi = false, saw_lo = false;
  for (int trial = 0; trial < 10; ++trial) {
    const auto set = generate_task_set(params, rng);
    if (!set) continue;
    for (const ImplicitTask& t : set->tasks()) {
      saw_hi |= t.criticality == Criticality::HI;
      saw_lo |= t.criticality == Criticality::LO;
    }
  }
  EXPECT_TRUE(saw_hi);
  EXPECT_TRUE(saw_lo);
}

TEST(TaskGenTest, DeterministicGivenSeed) {
  GenParams params;
  params.u_bound = 0.6;
  Rng a(77), b(77);
  const auto sa = generate_task_set(params, a);
  const auto sb = generate_task_set(params, b);
  ASSERT_TRUE(sa.has_value());
  ASSERT_TRUE(sb.has_value());
  ASSERT_EQ(sa->size(), sb->size());
  for (std::size_t i = 0; i < sa->size(); ++i) {
    EXPECT_EQ(sa->tasks()[i].period, sb->tasks()[i].period);
    EXPECT_EQ(sa->tasks()[i].c_lo, sb->tasks()[i].c_lo);
    EXPECT_EQ(sa->tasks()[i].c_hi, sb->tasks()[i].c_hi);
  }
}

TEST(RegionGenTest, HitsBothTargets) {
  Rng rng(8);
  RegionParams params;
  params.u_hi = 0.5;
  params.u_lo = 0.4;
  int generated = 0;
  for (int trial = 0; trial < 10; ++trial) {
    const auto set = generate_region_set(params, rng);
    if (!set) continue;
    ++generated;
    EXPECT_NEAR(set->u_hi_hi(), 0.5, params.tolerance + 0.01);
    EXPECT_NEAR(set->u_lo_lo(), 0.4, params.tolerance + 0.01);
  }
  EXPECT_GT(generated, 5);
}

TEST(RegionGenTest, GammaClampRespectsPeriod) {
  Rng rng(9);
  RegionParams params;
  params.u_hi = 0.8;
  params.u_lo = 0.2;
  const auto set = generate_region_set(params, rng);
  ASSERT_TRUE(set.has_value());
  for (const ImplicitTask& t : set->tasks())
    if (t.criticality == Criticality::HI) EXPECT_LE(t.c_hi, t.period);
}

TEST(FmsTest, StructureMatchesPaper) {
  const ImplicitSet fms = fms_task_set(2.0);
  ASSERT_EQ(fms.size(), 11u);
  int hi = 0, lo = 0;
  for (const ImplicitTask& t : fms.tasks()) {
    (t.criticality == Criticality::HI ? hi : lo)++;
    EXPECT_GE(t.period, 100);   // 100 ms
    EXPECT_LE(t.period, 5000);  // 5 s
  }
  EXPECT_EQ(hi, 7);
  EXPECT_EQ(lo, 4);
}

TEST(FmsTest, LoModeSchedulableAtUnitSpeed) {
  for (double gamma : {1.0, 2.0, 3.0})
    EXPECT_TRUE(lo_mode_schedulable(fms_task_set(gamma).materialize(1.0, 1.0)))
        << "gamma=" << gamma;
}

TEST(FmsTest, GammaScalesHiWcets) {
  const ImplicitSet g1 = fms_task_set(1.0);
  const ImplicitSet g3 = fms_task_set(3.0);
  for (std::size_t i = 0; i < g1.size(); ++i) {
    const ImplicitTask& a = g1.tasks()[i];
    const ImplicitTask& b = g3.tasks()[i];
    if (a.criticality == Criticality::HI) {
      EXPECT_EQ(a.c_hi, a.c_lo);
      EXPECT_GE(b.c_hi, a.c_hi);
    } else {
      EXPECT_EQ(b.c_hi, b.c_lo);
    }
  }
}

TEST(FmsTest, HiUtilizationGrowsWithGamma) {
  EXPECT_LT(fms_task_set(1.0).u_hi_hi(), fms_task_set(2.0).u_hi_hi());
  EXPECT_LT(fms_task_set(2.0).u_hi_hi(), fms_task_set(3.0).u_hi_hi());
}

}  // namespace
}  // namespace rbs

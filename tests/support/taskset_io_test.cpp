// Tests for the task-set text format.
#include "support/taskset_io.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "gen/paper_examples.hpp"

namespace rbs {
namespace {

TaskSet parse_or_die(const std::string& text) {
  std::istringstream in(text);
  auto result = read_task_set(in);
  EXPECT_TRUE(std::holds_alternative<TaskSet>(result))
      << std::get<ParseError>(result).message;
  return std::get<TaskSet>(result);
}

ParseError parse_error(const std::string& text) {
  std::istringstream in(text);
  auto result = read_task_set(in);
  EXPECT_TRUE(std::holds_alternative<ParseError>(result));
  return std::holds_alternative<ParseError>(result) ? std::get<ParseError>(result)
                                                    : ParseError{};
}

TEST(TaskSetIoTest, ParsesBasicFile) {
  const TaskSet set = parse_or_die(
      "# comment line\n"
      "tau1, HI, 3, 5, 4, 7, 7, 7\n"
      "\n"
      "tau2, LO, 2, 2, 5, 15, 15, 20   # trailing comment\n");
  ASSERT_EQ(set.size(), 2u);
  EXPECT_TRUE(set[0].is_hi());
  EXPECT_EQ(set[0].wcet(Mode::HI), 5);
  EXPECT_EQ(set[1].deadline(Mode::HI), 15);
  EXPECT_EQ(set[1].period(Mode::HI), 20);
}

TEST(TaskSetIoTest, ParsesInfAsTermination) {
  const TaskSet set = parse_or_die("l, LO, 2, 2, 10, inf, 10, inf\n");
  ASSERT_EQ(set.size(), 1u);
  EXPECT_TRUE(set[0].dropped_in_hi());
}

TEST(TaskSetIoTest, CriticalityCaseInsensitive) {
  const TaskSet set = parse_or_die("a, hi, 1, 2, 3, 6, 6, 6\nb, lo, 1, 1, 4, 4, 4, 4\n");
  EXPECT_TRUE(set[0].is_hi());
  EXPECT_FALSE(set[1].is_hi());
}

TEST(TaskSetIoTest, EmptyInputGivesEmptySet) {
  EXPECT_EQ(parse_or_die("# nothing here\n\n").size(), 0u);
}

TEST(TaskSetIoTest, ReportsFieldCountError) {
  const ParseError e = parse_error("tau1, HI, 3, 5, 4, 7, 7\n");
  EXPECT_EQ(e.line, 1);
  EXPECT_NE(e.message.find("8 fields"), std::string::npos);
}

TEST(TaskSetIoTest, ReportsBadNumber) {
  const ParseError e = parse_error("tau1, HI, 3, five, 4, 7, 7, 7\n");
  EXPECT_EQ(e.line, 1);
  EXPECT_NE(e.message.find("C(HI)"), std::string::npos);
}

TEST(TaskSetIoTest, ReportsBadCriticality) {
  EXPECT_NE(parse_error("t, MEDIUM, 1, 1, 2, 2, 2, 2\n").message.find("criticality"),
            std::string::npos);
}

TEST(TaskSetIoTest, ReportsModelViolationWithLine) {
  // C(HI) < C(LO) on a HI task violates Eq. (1).
  const ParseError e = parse_error("ok, LO, 1, 1, 5, 5, 5, 5\nbad, HI, 5, 3, 4, 7, 7, 7\n");
  EXPECT_EQ(e.line, 2);
}

TEST(TaskSetIoTest, RejectsHiTaskWithChangedPeriod) {
  const ParseError e = parse_error("h, HI, 1, 2, 3, 6, 6, 12\n");
  EXPECT_NE(e.message.find("T(HI) = T(LO)"), std::string::npos);
}

TEST(TaskSetIoTest, RejectsLoTaskWithChangedWcet) {
  const ParseError e = parse_error("l, LO, 1, 2, 3, 3, 3, 3\n");
  EXPECT_NE(e.message.find("C(HI) = C(LO)"), std::string::npos);
}

TEST(TaskSetIoTest, RejectsNegativeNumbers) {
  EXPECT_EQ(parse_error("t, LO, -1, -1, 2, 2, 2, 2\n").line, 1);
}

TEST(TaskSetIoTest, RejectsNaN) {
  const ParseError e = parse_error("t, LO, nan, nan, 2, 2, 2, 2\n");
  EXPECT_EQ(e.line, 1);
  EXPECT_NE(e.message.find("NaN"), std::string::npos);
  EXPECT_NE(e.message.find("C(LO)"), std::string::npos);
  EXPECT_NE(parse_error("t, HI, 1, 2, 3, NAN, 6, 6\n").message.find("NaN"),
            std::string::npos);
}

TEST(TaskSetIoTest, RejectsInfWhereOnlyFiniteIsLegal) {
  // "inf" is only meaningful for D(HI)/T(HI) of a LO task; a WCET or a
  // LO-mode bound can never be infinite.
  const ParseError e = parse_error("t, LO, inf, inf, 2, 2, 2, 2\n");
  EXPECT_EQ(e.line, 1);
  EXPECT_NE(e.message.find("C(LO)"), std::string::npos);
  EXPECT_NE(e.message.find("finite"), std::string::npos);
  EXPECT_NE(parse_error("t, LO, 1, 1, inf, inf, 2, 2\n").message.find("D(LO)"),
            std::string::npos);
  EXPECT_NE(parse_error("t, LO, 1, 1, 2, 2, inf, inf\n").message.find("T(LO)"),
            std::string::npos);
}

TEST(TaskSetIoTest, RejectsNegativeInfinity) {
  const ParseError e = parse_error("t, LO, 1, 1, 2, -inf, 2, 2\n");
  EXPECT_EQ(e.line, 1);
  EXPECT_NE(e.message.find("negative"), std::string::npos);
}

TEST(TaskSetIoTest, RejectsNonPositivePeriodsAndDeadlines) {
  EXPECT_NE(parse_error("t, LO, 1, 1, 0, 5, 5, 5\n").message.find("D(LO) must be positive"),
            std::string::npos);
  EXPECT_NE(parse_error("t, LO, 1, 1, 5, 0, 5, 5\n").message.find("D(HI) must be positive"),
            std::string::npos);
  EXPECT_NE(parse_error("t, LO, 1, 1, 5, 5, 0, 5\n").message.find("T(LO) must be positive"),
            std::string::npos);
  EXPECT_NE(parse_error("t, LO, 1, 1, 5, 5, 5, 0\n").message.find("T(HI) must be positive"),
            std::string::npos);
  EXPECT_NE(parse_error("t, HI, 1, 2, -3, 6, 6, 6\n").message.find("negative"),
            std::string::npos);
}

TEST(TaskSetIoTest, RejectsOutOfRangeValues) {
  // Larger than the kInfTicks sentinel (and than int64) in a finite field.
  const ParseError e = parse_error("t, LO, 1, 1, 2, 99999999999999999999, 5, 5\n");
  EXPECT_EQ(e.line, 1);
  EXPECT_NE(e.message.find("range"), std::string::npos);
  // Exactly the sentinel value spelled as digits is not a legal finite tick.
  const ParseError s = parse_error("t, LO, 1, 1, 2, 9223372036854775807, 5, 5\n");
  EXPECT_NE(s.message.find("range"), std::string::npos);
}

TEST(TaskSetIoTest, RoundTripsTable1) {
  std::ostringstream out;
  write_task_set(out, table1_degraded());
  const TaskSet back = parse_or_die(out.str());
  ASSERT_EQ(back.size(), 2u);
  for (std::size_t i = 0; i < back.size(); ++i) {
    EXPECT_EQ(describe(back[i]), describe(table1_degraded()[i]));
  }
}

TEST(TaskSetIoTest, RoundTripsTermination) {
  const TaskSet original({McTask::hi("h", 1, 2, 3, 6, 6),
                          McTask::lo_terminated("l", 2, 8, 8)});
  std::ostringstream out;
  write_task_set(out, original);
  EXPECT_NE(out.str().find("inf"), std::string::npos);
  const TaskSet back = parse_or_die(out.str());
  EXPECT_TRUE(back[1].dropped_in_hi());
}

TEST(TaskSetIoTest, FileRoundTrip) {
  const std::string path = testing::TempDir() + "/rbs_ts.txt";
  ASSERT_TRUE(write_task_set_file(path, table1_base()));
  auto result = read_task_set_file(path);
  ASSERT_TRUE(std::holds_alternative<TaskSet>(result));
  EXPECT_EQ(std::get<TaskSet>(result).size(), 2u);
  std::remove(path.c_str());
}

TEST(TaskSetIoTest, MissingFileReported) {
  auto result = read_task_set_file("/nonexistent/rbs.txt");
  ASSERT_TRUE(std::holds_alternative<ParseError>(result));
  EXPECT_EQ(std::get<ParseError>(result).line, 0);
}

}  // namespace
}  // namespace rbs

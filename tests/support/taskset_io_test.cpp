// Tests for the task-set text format.
#include "support/taskset_io.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <random>
#include <sstream>
#include <vector>

#include "gen/paper_examples.hpp"

namespace rbs {
namespace {

TaskSet parse_or_die(const std::string& text) {
  std::istringstream in(text);
  auto result = read_task_set(in);
  EXPECT_TRUE(std::holds_alternative<TaskSet>(result))
      << std::get<ParseError>(result).message;
  return std::get<TaskSet>(result);
}

ParseError parse_error(const std::string& text) {
  std::istringstream in(text);
  auto result = read_task_set(in);
  EXPECT_TRUE(std::holds_alternative<ParseError>(result));
  return std::holds_alternative<ParseError>(result) ? std::get<ParseError>(result)
                                                    : ParseError{};
}

TEST(TaskSetIoTest, ParsesBasicFile) {
  const TaskSet set = parse_or_die(
      "# comment line\n"
      "tau1, HI, 3, 5, 4, 7, 7, 7\n"
      "\n"
      "tau2, LO, 2, 2, 5, 15, 15, 20   # trailing comment\n");
  ASSERT_EQ(set.size(), 2u);
  EXPECT_TRUE(set[0].is_hi());
  EXPECT_EQ(set[0].wcet(Mode::HI), 5);
  EXPECT_EQ(set[1].deadline(Mode::HI), 15);
  EXPECT_EQ(set[1].period(Mode::HI), 20);
}

TEST(TaskSetIoTest, ParsesInfAsTermination) {
  const TaskSet set = parse_or_die("l, LO, 2, 2, 10, inf, 10, inf\n");
  ASSERT_EQ(set.size(), 1u);
  EXPECT_TRUE(set[0].dropped_in_hi());
}

TEST(TaskSetIoTest, CriticalityCaseInsensitive) {
  const TaskSet set = parse_or_die("a, hi, 1, 2, 3, 6, 6, 6\nb, lo, 1, 1, 4, 4, 4, 4\n");
  EXPECT_TRUE(set[0].is_hi());
  EXPECT_FALSE(set[1].is_hi());
}

TEST(TaskSetIoTest, EmptyInputGivesEmptySet) {
  EXPECT_EQ(parse_or_die("# nothing here\n\n").size(), 0u);
}

TEST(TaskSetIoTest, ReportsFieldCountError) {
  const ParseError e = parse_error("tau1, HI, 3, 5, 4, 7, 7\n");
  EXPECT_EQ(e.line, 1);
  EXPECT_NE(e.message.find("8 fields"), std::string::npos);
}

TEST(TaskSetIoTest, ReportsBadNumber) {
  const ParseError e = parse_error("tau1, HI, 3, five, 4, 7, 7, 7\n");
  EXPECT_EQ(e.line, 1);
  EXPECT_NE(e.message.find("C(HI)"), std::string::npos);
}

TEST(TaskSetIoTest, ReportsBadCriticality) {
  EXPECT_NE(parse_error("t, MEDIUM, 1, 1, 2, 2, 2, 2\n").message.find("criticality"),
            std::string::npos);
}

TEST(TaskSetIoTest, ReportsModelViolationWithLine) {
  // C(HI) < C(LO) on a HI task violates Eq. (1).
  const ParseError e = parse_error("ok, LO, 1, 1, 5, 5, 5, 5\nbad, HI, 5, 3, 4, 7, 7, 7\n");
  EXPECT_EQ(e.line, 2);
}

TEST(TaskSetIoTest, RejectsHiTaskWithChangedPeriod) {
  const ParseError e = parse_error("h, HI, 1, 2, 3, 6, 6, 12\n");
  EXPECT_NE(e.message.find("T(HI) = T(LO)"), std::string::npos);
}

TEST(TaskSetIoTest, RejectsLoTaskWithChangedWcet) {
  const ParseError e = parse_error("l, LO, 1, 2, 3, 3, 3, 3\n");
  EXPECT_NE(e.message.find("C(HI) = C(LO)"), std::string::npos);
}

TEST(TaskSetIoTest, RejectsNegativeNumbers) {
  EXPECT_EQ(parse_error("t, LO, -1, -1, 2, 2, 2, 2\n").line, 1);
}

TEST(TaskSetIoTest, RejectsNaN) {
  const ParseError e = parse_error("t, LO, nan, nan, 2, 2, 2, 2\n");
  EXPECT_EQ(e.line, 1);
  EXPECT_NE(e.message.find("NaN"), std::string::npos);
  EXPECT_NE(e.message.find("C(LO)"), std::string::npos);
  EXPECT_NE(parse_error("t, HI, 1, 2, 3, NAN, 6, 6\n").message.find("NaN"),
            std::string::npos);
}

TEST(TaskSetIoTest, RejectsInfWhereOnlyFiniteIsLegal) {
  // "inf" is only meaningful for D(HI)/T(HI) of a LO task; a WCET or a
  // LO-mode bound can never be infinite.
  const ParseError e = parse_error("t, LO, inf, inf, 2, 2, 2, 2\n");
  EXPECT_EQ(e.line, 1);
  EXPECT_NE(e.message.find("C(LO)"), std::string::npos);
  EXPECT_NE(e.message.find("finite"), std::string::npos);
  EXPECT_NE(parse_error("t, LO, 1, 1, inf, inf, 2, 2\n").message.find("D(LO)"),
            std::string::npos);
  EXPECT_NE(parse_error("t, LO, 1, 1, 2, 2, inf, inf\n").message.find("T(LO)"),
            std::string::npos);
}

TEST(TaskSetIoTest, RejectsNegativeInfinity) {
  const ParseError e = parse_error("t, LO, 1, 1, 2, -inf, 2, 2\n");
  EXPECT_EQ(e.line, 1);
  EXPECT_NE(e.message.find("negative"), std::string::npos);
}

TEST(TaskSetIoTest, RejectsNonPositivePeriodsAndDeadlines) {
  EXPECT_NE(parse_error("t, LO, 1, 1, 0, 5, 5, 5\n").message.find("D(LO) must be positive"),
            std::string::npos);
  EXPECT_NE(parse_error("t, LO, 1, 1, 5, 0, 5, 5\n").message.find("D(HI) must be positive"),
            std::string::npos);
  EXPECT_NE(parse_error("t, LO, 1, 1, 5, 5, 0, 5\n").message.find("T(LO) must be positive"),
            std::string::npos);
  EXPECT_NE(parse_error("t, LO, 1, 1, 5, 5, 5, 0\n").message.find("T(HI) must be positive"),
            std::string::npos);
  EXPECT_NE(parse_error("t, HI, 1, 2, -3, 6, 6, 6\n").message.find("negative"),
            std::string::npos);
}

TEST(TaskSetIoTest, RejectsOutOfRangeValues) {
  // Larger than the kInfTicks sentinel (and than int64) in a finite field.
  const ParseError e = parse_error("t, LO, 1, 1, 2, 99999999999999999999, 5, 5\n");
  EXPECT_EQ(e.line, 1);
  EXPECT_NE(e.message.find("range"), std::string::npos);
  // Exactly the sentinel value spelled as digits is not a legal finite tick.
  const ParseError s = parse_error("t, LO, 1, 1, 2, 9223372036854775807, 5, 5\n");
  EXPECT_NE(s.message.find("range"), std::string::npos);
}

TEST(TaskSetIoTest, RoundTripsTable1) {
  std::ostringstream out;
  write_task_set(out, table1_degraded());
  const TaskSet back = parse_or_die(out.str());
  ASSERT_EQ(back.size(), 2u);
  for (std::size_t i = 0; i < back.size(); ++i) {
    EXPECT_EQ(describe(back[i]), describe(table1_degraded()[i]));
  }
}

TEST(TaskSetIoTest, RoundTripsTermination) {
  const TaskSet original({McTask::hi("h", 1, 2, 3, 6, 6),
                          McTask::lo_terminated("l", 2, 8, 8)});
  std::ostringstream out;
  write_task_set(out, original);
  EXPECT_NE(out.str().find("inf"), std::string::npos);
  const TaskSet back = parse_or_die(out.str());
  EXPECT_TRUE(back[1].dropped_in_hi());
}

TEST(TaskSetIoTest, FileRoundTrip) {
  const std::string path = testing::TempDir() + "/rbs_ts.txt";
  ASSERT_TRUE(write_task_set_file(path, table1_base()));
  auto result = read_task_set_file(path);
  ASSERT_TRUE(std::holds_alternative<TaskSet>(result));
  EXPECT_EQ(std::get<TaskSet>(result).size(), 2u);
  std::remove(path.c_str());
}

TEST(TaskSetIoTest, MissingFileReported) {
  auto result = read_task_set_file("/nonexistent/rbs.txt");
  ASSERT_TRUE(std::holds_alternative<ParseError>(result));
  EXPECT_EQ(std::get<ParseError>(result).line, 0);
}

// --- partitioned task-set files (# cores / # core directives) --------------

std::string partition_error(const std::string& text) {
  std::istringstream in(text);
  const Expected<PartitionedTaskSet> result = load_partitioned_task_set(in);
  EXPECT_FALSE(result.is_ok()) << "expected a parse error for:\n" << text;
  return result.is_ok() ? std::string{} : result.status().message();
}

TEST(PartitionedTaskSetIoTest, RoundTripsAssignmentIncludingEmptyCore) {
  PartitionedTaskSet original;
  original.set = TaskSet({McTask::hi("h0", 1, 2, 3, 6, 6), McTask::lo("l0", 2, 8, 8),
                          McTask::hi("h1", 1, 2, 4, 7, 7), McTask::lo_terminated("l1", 2, 9, 9)});
  // Core 1 deliberately empty; core 0's tasks deliberately out of index order.
  original.assignment = {{2, 0}, {}, {1, 3}};

  std::ostringstream out;
  write_partitioned_task_set(out, original);
  std::istringstream in(out.str());
  const Expected<PartitionedTaskSet> back = load_partitioned_task_set(in);
  ASSERT_TRUE(back.is_ok()) << back.status().message();

  // The writer renumbers tasks into core-grouped file order; the per-core
  // task collections (by name and parameters) are what round-trips.
  ASSERT_EQ(back->assignment.size(), 3u);
  EXPECT_TRUE(back->assignment[1].empty());
  std::vector<std::vector<std::string>> original_names(3), loaded_names(3);
  for (std::size_t c = 0; c < 3; ++c) {
    for (std::size_t idx : original.assignment[c])
      original_names[c].push_back(original.set[idx].name());
    for (std::size_t idx : back->assignment[c])
      loaded_names[c].push_back(back->set[idx].name());
  }
  EXPECT_EQ(loaded_names, original_names);
  EXPECT_EQ(canonical_task_set(back->set), canonical_task_set(original.set));
  EXPECT_TRUE(back->set[back->assignment[2][1]].dropped_in_hi());

  // The directives live in comments, so the FLAT reader still accepts the
  // same bytes: partitioned files remain valid uniprocessor inputs.
  const TaskSet flat = parse_or_die(out.str());
  EXPECT_EQ(flat.size(), 4u);
}

TEST(PartitionedTaskSetIoTest, FileRoundTrip) {
  PartitionedTaskSet original;
  original.set = TaskSet({McTask::hi("h", 1, 2, 3, 6, 6), McTask::lo("l", 2, 8, 8)});
  original.assignment = {{0}, {1}};
  const std::string path = testing::TempDir() + "/rbs_part_ts.txt";
  ASSERT_TRUE(write_partitioned_task_set_file(path, original));
  const Expected<PartitionedTaskSet> back = load_partitioned_task_set_file(path);
  ASSERT_TRUE(back.is_ok()) << back.status().message();
  EXPECT_EQ(back->assignment.size(), 2u);
  std::remove(path.c_str());
}

TEST(PartitionedTaskSetIoTest, FlatFileIsNotAPartitionedFile) {
  // A task line with no '# cores' header is diagnosed, with its line number,
  // as a flat file -- never silently treated as a one-core partition.
  const std::string e = partition_error("a, HI, 1, 2, 3, 6, 6, 6\n");
  EXPECT_NE(e.find("line 1"), std::string::npos) << e;
  EXPECT_NE(e.find("# cores"), std::string::npos) << e;
  EXPECT_NE(partition_error("# just a comment\n").find("missing '# cores M'"),
            std::string::npos);
}

TEST(PartitionedTaskSetIoTest, DirectiveErrorsAreLineNumbered) {
  // Task before any core marker.
  EXPECT_NE(partition_error("# cores 2\na, HI, 1, 2, 3, 6, 6, 6\n")
                .find("line 2: task line before any '# core c' marker"),
            std::string::npos);
  // Core index out of range.
  EXPECT_NE(partition_error("# cores 2\n# core 5\n").find("out of range"),
            std::string::npos);
  // '# core' before '# cores'.
  EXPECT_NE(partition_error("# core 0\n# cores 2\n").find("line 1"), std::string::npos);
  // Zero cores is not a partition.
  EXPECT_NE(partition_error("# cores 0\n").find("'# cores 0'"), std::string::npos);
  // Duplicate '# cores'.
  EXPECT_NE(partition_error("# cores 2\n# cores 2\n").find("duplicate"), std::string::npos);
  // A directive keyword that does not parse completely is an error, not prose.
  EXPECT_NE(partition_error("# cores\n").find("malformed"), std::string::npos);
  EXPECT_NE(partition_error("# cores 2 surplus\n").find("malformed"), std::string::npos);
}

TEST(PartitionedTaskSetIoTest, ProseCommentsStayProse) {
  // Comments whose first token is not a directive keyword are ignored even
  // when they mention cores somewhere later.
  const std::string text =
      "# cores 1\n"
      "# this file has many cores of wisdom\n"
      "# core 0\n"
      "t, LO, 1, 1, 5, 5, 5, 5\n";
  std::istringstream in(text);
  const Expected<PartitionedTaskSet> result = load_partitioned_task_set(in);
  ASSERT_TRUE(result.is_ok()) << result.status().message();
  EXPECT_EQ(result->assignment[0].size(), 1u);
}

TEST(PartitionedTaskSetIoTest, FieldValidationStillComesFromTheFlatReader) {
  // Pass 2 owns per-field diagnostics: a model violation inside a valid
  // directive skeleton is still reported.
  const std::string e =
      partition_error("# cores 1\n# core 0\nbad, HI, 5, 3, 4, 7, 7, 7\n");
  EXPECT_FALSE(e.empty());
}

// --- canonical serialization (the analysis server's cache key) -------------

TEST(CanonicalTaskSetTest, EmptySetIsEmptyString) {
  EXPECT_EQ(canonical_task_set(TaskSet(std::vector<McTask>{})), "");
}

TEST(CanonicalTaskSetTest, DropsNamesAndSortsTasks) {
  const TaskSet a({McTask::hi("alpha", 1, 2, 3, 6, 6), McTask::lo("beta", 2, 5, 5, 8, 8)});
  const TaskSet b({McTask::lo("x", 2, 5, 5, 8, 8), McTask::hi("y", 1, 2, 3, 6, 6)});
  EXPECT_EQ(canonical_task_set(a), canonical_task_set(b));
  EXPECT_EQ(canonical_task_set(a).find(' '), std::string::npos);
  EXPECT_EQ(canonical_task_set(a).find("alpha"), std::string::npos);
}

TEST(CanonicalTaskSetTest, DistinguishesDifferentParameters) {
  const TaskSet a({McTask::hi("t", 1, 2, 3, 6, 6)});
  const TaskSet b({McTask::hi("t", 1, 2, 3, 7, 7)});
  EXPECT_NE(canonical_task_set(a), canonical_task_set(b));
}

TEST(CanonicalTaskSetTest, TerminationRendersAsInf) {
  const TaskSet set({McTask::lo_terminated("l", 2, 8, 8)});
  const std::string canon = canonical_task_set(set);
  EXPECT_NE(canon.find("inf"), std::string::npos);
  EXPECT_EQ(canon.find('\n'), std::string::npos);
}

// Property: the canonical form is invariant under renaming and declaration
// order, and stable through a write/parse round trip. Deterministically
// seeded so failures reproduce.
TEST(CanonicalTaskSetTest, RoundTripAndPermutationProperty) {
  std::mt19937_64 rng(20260808u);
  for (int iter = 0; iter < 200; ++iter) {
    const int n = 1 + static_cast<int>(rng() % 6u);
    std::vector<McTask> tasks;
    for (int i = 0; i < n; ++i) {
      const Ticks c_lo = 1 + static_cast<Ticks>(rng() % 9u);
      const Ticks t_lo = c_lo + 1 + static_cast<Ticks>(rng() % 40u);
      const Ticks d_lo = c_lo + static_cast<Ticks>(rng() % (t_lo - c_lo + 1));
      const std::string name = "t" + std::to_string(i);
      if (rng() % 2u == 0) {
        const Ticks c_hi = c_lo + static_cast<Ticks>(rng() % std::max<Ticks>(d_lo - c_lo + 1, 1));
        const Ticks d_hi = d_lo + static_cast<Ticks>(rng() % (t_lo - d_lo + 1));
        tasks.push_back(McTask::hi(name, c_lo, std::max(c_hi, c_lo), d_lo, d_hi, t_lo));
      } else if (rng() % 3u == 0) {
        tasks.push_back(McTask::lo_terminated(name, c_lo, d_lo, t_lo));
      } else {
        const Ticks t_hi = t_lo + static_cast<Ticks>(rng() % 40u);
        const Ticks d_hi = d_lo + static_cast<Ticks>(rng() % (t_hi - d_lo + 1));
        tasks.push_back(McTask::lo(name, c_lo, d_lo, t_lo, d_hi, t_hi));
      }
    }
    const TaskSet original(tasks);
    const std::string canon = canonical_task_set(original);

    // Shuffle declaration order and rename every task: same canonical form.
    std::vector<McTask> shuffled = tasks;
    std::shuffle(shuffled.begin(), shuffled.end(), rng);
    std::vector<McTask> renamed;
    for (std::size_t i = 0; i < shuffled.size(); ++i) {
      const McTask& t = shuffled[i];
      const std::string name = "renamed" + std::to_string(i);
      if (t.is_hi()) {
        renamed.push_back(McTask::hi(name, t.wcet(Mode::LO), t.wcet(Mode::HI),
                                     t.deadline(Mode::LO), t.deadline(Mode::HI),
                                     t.period(Mode::LO)));
      } else {
        renamed.push_back(McTask::lo(name, t.wcet(Mode::LO), t.deadline(Mode::LO),
                                     t.period(Mode::LO), t.deadline(Mode::HI),
                                     t.period(Mode::HI)));
      }
    }
    EXPECT_EQ(canonical_task_set(TaskSet(renamed)), canon) << "iter " << iter;

    // Text round trip: write -> parse -> same canonical form.
    std::ostringstream out;
    write_task_set(out, original);
    EXPECT_EQ(canonical_task_set(parse_or_die(out.str())), canon) << "iter " << iter;
  }
}

TEST(CanonicalDoubleTest, SnapsRoundingNoiseOntoGrid) {
  EXPECT_EQ(canonical_double(1.0), canonical_double(1.0 + 1e-13));
  EXPECT_EQ(canonical_double(1.0), canonical_double(1.0 - 1e-13));
  EXPECT_NE(canonical_double(1.0), canonical_double(1.0 + 1e-6));
  EXPECT_NE(canonical_double(1.25), canonical_double(1.5));
}

TEST(CanonicalDoubleTest, HandlesNonFiniteAndExtremes) {
  EXPECT_EQ(canonical_double(std::numeric_limits<double>::quiet_NaN()), "nan");
  EXPECT_EQ(canonical_double(std::numeric_limits<double>::infinity()), "inf");
  EXPECT_EQ(canonical_double(-std::numeric_limits<double>::infinity()), "-inf");
  // Beyond the lattice range: still deterministic and distinct from zero.
  EXPECT_EQ(canonical_double(1e200), canonical_double(1e200));
  EXPECT_NE(canonical_double(1e200), canonical_double(0.0));
  EXPECT_EQ(canonical_double(0.0), "g0");
  EXPECT_EQ(canonical_double(-0.0), "g0");
}

}  // namespace
}  // namespace rbs

// Tests for the recoverable-error plumbing: Status/Expected themselves, the
// non-throwing TaskSet factory, degenerate-input rejection in taskset_io,
// and the checked CLI getters.
#include "support/status.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "core/task.hpp"
#include "support/cli.hpp"
#include "support/taskset_io.hpp"

namespace rbs {
namespace {

TEST(StatusTest, OkAndErrorSemantics) {
  const Status ok = Status::ok();
  EXPECT_TRUE(ok.is_ok());
  EXPECT_TRUE(static_cast<bool>(ok));
  EXPECT_TRUE(ok.message().empty());

  const Status err = Status::error("broken");
  EXPECT_FALSE(err.is_ok());
  EXPECT_FALSE(static_cast<bool>(err));
  EXPECT_EQ(err.message(), "broken");

  EXPECT_TRUE(Status().is_ok());  // default-constructed is ok
}

TEST(ExpectedTest, ValueAndErrorPaths) {
  const Expected<int> good = 42;
  ASSERT_TRUE(good.is_ok());
  EXPECT_EQ(good.value(), 42);
  EXPECT_EQ(good.value_or(-1), 42);
  EXPECT_TRUE(good.error_message().empty());

  const Expected<int> bad = Status::error("nope");
  EXPECT_FALSE(bad.is_ok());
  EXPECT_FALSE(static_cast<bool>(bad));
  EXPECT_EQ(bad.error_message(), "nope");
  EXPECT_EQ(bad.value_or(-1), -1);
  EXPECT_THROW(bad.value(), std::logic_error);
}

TEST(ExpectedTest, MoveOutOfValue) {
  Expected<std::string> s = std::string("payload");
  const std::string moved = std::move(s).value();
  EXPECT_EQ(moved, "payload");
}

TEST(TaskSetCreateTest, ValidTasksSucceed) {
  const Expected<TaskSet> set = TaskSet::create({
      McTask::hi("h", 3, 5, 4, 7, 7),
      McTask::lo("l", 2, 5, 15),
  });
  ASSERT_TRUE(set.is_ok());
  EXPECT_EQ(set.value().size(), 2u);
}

TEST(TaskSetCreateTest, ConstraintViolationsBecomeErrors) {
  // C(HI) < C(LO) on a HI task violates Eq. 1.
  const Expected<TaskSet> bad = TaskSet::create({McTask::hi("h", 5, 3, 4, 7, 7)});
  ASSERT_FALSE(bad.is_ok());
  EXPECT_NE(bad.error_message().find("h"), std::string::npos);
  EXPECT_NE(bad.error_message().find("C(HI) >= C(LO)"), std::string::npos);

  // Zero WCET.
  EXPECT_FALSE(TaskSet::create({McTask::lo("z", 0, 5, 5)}));
  // D > T (unconstrained deadline).
  EXPECT_FALSE(TaskSet::create({McTask::lo("d", 1, 9, 5)}));
}

// ---- degenerate-input rejection at load time ------------------------------

Expected<TaskSet> load(const std::string& text) {
  std::istringstream in(text);
  return load_task_set(in);
}

TEST(TasksetLoadTest, ValidFileRoundTrips) {
  const Expected<TaskSet> set = load(
      "# name, crit, C(LO), C(HI), D(LO), D(HI), T(LO), T(HI)\n"
      "guidance, HI, 5, 10, 50, 100, 100, 100\n"
      "logging,  LO, 50, 50, 1000, inf, 1000, inf\n");
  ASSERT_TRUE(set.is_ok()) << set.error_message();
  EXPECT_EQ(set.value().size(), 2u);
  EXPECT_TRUE(set.value()[1].dropped_in_hi());
}

TEST(TasksetLoadTest, RejectsDegenerateParameters) {
  // Negative C.
  EXPECT_FALSE(load("t, HI, -5, 10, 50, 100, 100, 100\n"));
  // NaN is not a tick count.
  EXPECT_FALSE(load("t, HI, nan, 10, 50, 100, 100, 100\n"));
  // C(HI) < C(LO).
  EXPECT_FALSE(load("t, HI, 10, 5, 50, 100, 100, 100\n"));
  // D > T.
  EXPECT_FALSE(load("t, LO, 5, 5, 200, 200, 100, 100\n"));
  // Zero period.
  EXPECT_FALSE(load("t, LO, 5, 5, 50, 50, 0, 0\n"));
  // C > D.
  EXPECT_FALSE(load("t, HI, 60, 60, 50, 100, 100, 100\n"));
}

TEST(TasksetLoadTest, ErrorsCarryLineNumbers) {
  const Expected<TaskSet> bad = load(
      "ok, HI, 5, 10, 50, 100, 100, 100\n"
      "broken, HI, 5, 10\n");
  ASSERT_FALSE(bad.is_ok());
  EXPECT_NE(bad.error_message().find("line 2"), std::string::npos);
}

TEST(TasksetLoadTest, RejectsDuplicateNames) {
  const Expected<TaskSet> bad = load(
      "twin, HI, 5, 10, 50, 100, 100, 100\n"
      "twin, LO, 5, 5, 50, 50, 100, 100\n");
  ASSERT_FALSE(bad.is_ok());
  EXPECT_NE(bad.error_message().find("duplicate"), std::string::npos);
}

TEST(TasksetLoadTest, MissingFileIsAnError) {
  const Expected<TaskSet> missing = load_task_set_file("/nonexistent/tasks.csv");
  ASSERT_FALSE(missing.is_ok());
  EXPECT_NE(missing.error_message().find("cannot open"), std::string::npos);
}

// ---- checked CLI getters --------------------------------------------------

TEST(CliCheckedTest, ParsesWellFormedValues) {
  const char* argv[] = {"prog", "--rate", "1.5", "--count=42", "--name", "x"};
  const CliArgs args(6, argv);
  EXPECT_DOUBLE_EQ(args.get_double_checked("rate", 0.0).value(), 1.5);
  EXPECT_EQ(args.get_int_checked("count", 0).value(), 42);
  EXPECT_DOUBLE_EQ(args.get_double_checked("absent", 9.5).value(), 9.5);
  EXPECT_EQ(args.get_int_checked("absent", 7).value(), 7);
}

TEST(CliCheckedTest, MalformedValuesAreErrorsNotZero) {
  const char* argv[] = {"prog", "--rate", "fast", "--count", "12monkeys"};
  const CliArgs args(5, argv);
  const Expected<double> rate = args.get_double_checked("rate", 0.0);
  ASSERT_FALSE(rate.is_ok());
  EXPECT_NE(rate.error_message().find("--rate"), std::string::npos);
  EXPECT_FALSE(args.get_int_checked("count", 0).is_ok());
  // The unchecked getters silently coerce -- that contrast is the point.
  EXPECT_DOUBLE_EQ(args.get_double("rate", 0.0), 0.0);
}

}  // namespace
}  // namespace rbs

// Tests for the table/CSV/CLI helpers.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <limits>
#include <fstream>
#include <sstream>

#include "support/cli.hpp"
#include "support/csv.hpp"
#include "support/table.hpp"

namespace rbs {
namespace {

TEST(TextTableTest, AlignsColumns) {
  TextTable t;
  t.set_header({"a", "longer"});
  t.add_row({"xxxx", "1"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("a     longer"), std::string::npos);
  EXPECT_NE(out.find("xxxx  1"), std::string::npos);
  EXPECT_NE(out.find("-----"), std::string::npos);
}

TEST(TextTableTest, NumFormatting) {
  EXPECT_EQ(TextTable::num(1.23456, 3), "1.235");
  EXPECT_EQ(TextTable::num(std::numeric_limits<double>::infinity(), 2), "inf");
  EXPECT_EQ(TextTable::num(std::nan(""), 2), "n/a");
  EXPECT_EQ(TextTable::num(42LL), "42");
}

TEST(TextTableTest, ShortRowsPadded) {
  TextTable t;
  t.set_header({"a", "b", "c"});
  t.add_row({"1"});
  std::ostringstream os;
  t.print(os);  // must not crash; row padded
  EXPECT_EQ(t.rows(), 1u);
}

TEST(CsvTest, EscapesSpecialCharacters) {
  EXPECT_EQ(csv_escape("plain"), "plain");
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(CsvTest, WritesRowsToFile) {
  const std::string path = testing::TempDir() + "/rbs_csv_test.csv";
  {
    CsvWriter w(path);
    ASSERT_TRUE(w.ok());
    w.write_row({"x", "y"});
    w.write_row_numeric({1.5, 2.5});
  }
  std::ifstream in(path);
  std::string line1, line2;
  std::getline(in, line1);
  std::getline(in, line2);
  EXPECT_EQ(line1, "x,y");
  EXPECT_EQ(line2, "1.5,2.5");
  std::remove(path.c_str());
}

TEST(CsvTest, BadPathReportsNotOk) {
  CsvWriter w("/nonexistent_dir_zzz/file.csv");
  EXPECT_FALSE(w.ok());
  w.write_row({"ignored"});  // must not crash
}

TEST(CliTest, ParsesFlagFormats) {
  const char* argv[] = {"prog", "--alpha", "3", "--beta=0.5", "--gamma", "pos", "--flag"};
  const CliArgs args(7, argv);
  EXPECT_EQ(args.get_int("alpha", 0), 3);
  EXPECT_DOUBLE_EQ(args.get_double("beta", 0.0), 0.5);
  EXPECT_EQ(args.get_string("gamma", ""), "pos");
  EXPECT_TRUE(args.get_bool("flag"));
  EXPECT_FALSE(args.get_bool("missing"));
  EXPECT_EQ(args.get_int("missing", 9), 9);
}

TEST(CliTest, PositionalArguments) {
  const char* argv[] = {"prog", "one", "--k", "v", "two"};
  const CliArgs args(5, argv);
  ASSERT_EQ(args.positional().size(), 2u);
  EXPECT_EQ(args.positional()[0], "one");
  EXPECT_EQ(args.positional()[1], "two");
}

TEST(CliTest, BooleanValueSpellings) {
  const char* argv[] = {"prog", "--a=1", "--b=true", "--c=no", "--d=off"};
  const CliArgs args(5, argv);
  EXPECT_TRUE(args.get_bool("a"));
  EXPECT_TRUE(args.get_bool("b"));
  EXPECT_FALSE(args.get_bool("c"));
  EXPECT_FALSE(args.get_bool("d"));
}

TEST(CliTest, FlagNamesListed) {
  const char* argv[] = {"prog", "--one", "--two=2"};
  const CliArgs args(3, argv);
  const auto names = args.flag_names();
  EXPECT_EQ(names.size(), 2u);
}

}  // namespace
}  // namespace rbs

// Tests for the descriptive-statistics helpers.
#include "support/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace rbs {
namespace {

TEST(StatsTest, PercentileEmptyIsNaN) {
  EXPECT_TRUE(std::isnan(percentile({}, 50.0)));
  EXPECT_TRUE(std::isnan(median({})));
  EXPECT_TRUE(std::isnan(mean({})));
}

TEST(StatsTest, PercentileSingleton) {
  EXPECT_DOUBLE_EQ(percentile({7.0}, 0.0), 7.0);
  EXPECT_DOUBLE_EQ(percentile({7.0}, 100.0), 7.0);
}

TEST(StatsTest, MedianOddEven) {
  EXPECT_DOUBLE_EQ(median({3.0, 1.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(median({4.0, 1.0, 2.0, 3.0}), 2.5);
}

TEST(StatsTest, PercentileInterpolates) {
  const std::vector<double> v{0.0, 10.0};
  EXPECT_DOUBLE_EQ(percentile(v, 25.0), 2.5);
  EXPECT_DOUBLE_EQ(percentile(v, 75.0), 7.5);
}

TEST(StatsTest, PercentileClampsOutOfRange) {
  const std::vector<double> v{1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(percentile(v, -5.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 105.0), 3.0);
}

TEST(StatsTest, MeanBasic) { EXPECT_DOUBLE_EQ(mean({1.0, 2.0, 3.0, 4.0}), 2.5); }

TEST(BoxWhiskerTest, FiveNumberSummary) {
  const BoxWhisker b = box_whisker({1, 2, 3, 4, 5, 6, 7, 8, 9});
  EXPECT_EQ(b.count, 9u);
  EXPECT_DOUBLE_EQ(b.min, 1.0);
  EXPECT_DOUBLE_EQ(b.max, 9.0);
  EXPECT_DOUBLE_EQ(b.median, 5.0);
  EXPECT_DOUBLE_EQ(b.q1, 3.0);
  EXPECT_DOUBLE_EQ(b.q3, 7.0);
  EXPECT_TRUE(b.outliers.empty());
  EXPECT_DOUBLE_EQ(b.whisker_lo, 1.0);
  EXPECT_DOUBLE_EQ(b.whisker_hi, 9.0);
}

TEST(BoxWhiskerTest, OutliersBeyondTukeyFences) {
  std::vector<double> v{1, 2, 3, 4, 5, 6, 7, 8, 9};
  v.push_back(100.0);  // way beyond q3 + 1.5*IQR
  const BoxWhisker b = box_whisker(v);
  ASSERT_EQ(b.outliers.size(), 1u);
  EXPECT_DOUBLE_EQ(b.outliers[0], 100.0);
  EXPECT_LT(b.whisker_hi, 100.0);
  EXPECT_DOUBLE_EQ(b.max, 100.0);
}

TEST(BoxWhiskerTest, InfinitiesExcludedFromQuartiles) {
  const BoxWhisker b =
      box_whisker({1.0, 2.0, 3.0, std::numeric_limits<double>::infinity()});
  EXPECT_EQ(b.count, 4u);  // reported, but
  EXPECT_DOUBLE_EQ(b.max, 3.0);  // quartiles over finite values only
}

TEST(BoxWhiskerTest, EmptyIsAllNaN) {
  const BoxWhisker b = box_whisker({});
  EXPECT_EQ(b.count, 0u);
  EXPECT_TRUE(std::isnan(b.median));
}

}  // namespace
}  // namespace rbs

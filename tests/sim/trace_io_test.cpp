// Tests for JSON trace export and the per-task runtime statistics.
#include "sim/trace_io.hpp"

#include <gtest/gtest.h>

#include "gen/paper_examples.hpp"
#include "sim/simulator.hpp"

namespace rbs::sim {
namespace {

SimResult run_table1(bool trace) {
  SimConfig cfg;
  cfg.horizon = 40.0;
  cfg.hi_speed = 2.0;
  cfg.demand.overrun_probability = 1.0;
  cfg.record_trace = trace;
  return simulate(table1_base(), cfg);
}

TEST(TraceJsonTest, ContainsAllSections) {
  const std::string json = trace_to_json(table1_base(), run_table1(true));
  EXPECT_NE(json.find("\"tasks\": [\"tau1\", \"tau2\"]"), std::string::npos);
  EXPECT_NE(json.find("\"segments\": ["), std::string::npos);
  EXPECT_NE(json.find("\"events\": ["), std::string::npos);
  EXPECT_NE(json.find("\"summary\": {"), std::string::npos);
  EXPECT_NE(json.find("\"mode\": \"HI\""), std::string::npos);
  EXPECT_NE(json.find("\"kind\": \"switch->HI\""), std::string::npos);
}

TEST(TraceJsonTest, BalancedBracesAndBrackets) {
  const std::string json = trace_to_json(table1_base(), run_table1(true));
  int braces = 0, brackets = 0;
  for (char c : json) {
    braces += (c == '{') - (c == '}');
    brackets += (c == '[') - (c == ']');
    EXPECT_GE(braces, 0);
    EXPECT_GE(brackets, 0);
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
}

TEST(TraceJsonTest, EscapesSpecialCharactersInNames) {
  const TaskSet odd({McTask::lo("we\"ird\\name", 1, 10, 10)});
  SimConfig cfg;
  cfg.horizon = 5.0;
  cfg.record_trace = true;
  const std::string json = trace_to_json(odd, simulate(odd, cfg));
  EXPECT_NE(json.find("we\\\"ird\\\\name"), std::string::npos);
}

TEST(TraceJsonTest, EmptyTraceStillValid) {
  const std::string json = trace_to_json(table1_base(), run_table1(false));
  EXPECT_NE(json.find("\"segments\": [\n  ]"), std::string::npos);
}

TEST(TaskStatsTest, CountsPerTask) {
  const SimResult r = run_table1(false);
  ASSERT_EQ(r.task_stats.size(), 2u);
  // tau1: T=7 over horizon 40 -> releases at 0,7,...,35 (6); tau2: T=15 -> 3.
  EXPECT_EQ(r.task_stats[0].released, 6u);
  EXPECT_EQ(r.task_stats[1].released, 3u);
  EXPECT_EQ(r.task_stats[0].released + r.task_stats[1].released, r.jobs_released);
  EXPECT_EQ(r.task_stats[0].misses + r.task_stats[1].misses, r.misses.size());
}

TEST(TaskStatsTest, ResponseTimesWithinDeadlines) {
  const SimResult r = run_table1(false);
  // No misses (s=2 >= s_min): responses bounded by the HI-mode deadlines.
  ASSERT_FALSE(r.deadline_missed());
  EXPECT_GT(r.task_stats[0].max_response, 0.0);
  EXPECT_LE(r.task_stats[0].max_response, 7.0 + 1e-6);
  EXPECT_LE(r.task_stats[1].max_response, 5.0 + 1e-6);
  EXPECT_LE(r.task_stats[0].mean_response(), r.task_stats[0].max_response + 1e-9);
}

TEST(BurstSeparationTest, SwitchesAreSeparated) {
  SimConfig cfg;
  cfg.horizon = 5000.0;
  cfg.hi_speed = 2.0;
  cfg.demand.overrun_probability = 1.0;
  cfg.min_overrun_separation = 50.0;
  cfg.record_trace = true;
  const SimResult r = simulate(table1_base(), cfg);
  EXPECT_GT(r.mode_switches, 1u);
  double last_switch = -1e18;
  for (const TraceEvent& e : r.trace.events) {
    if (e.kind != TraceEvent::Kind::kModeSwitchHi) continue;
    EXPECT_GE(e.time - last_switch, 50.0 - 1e-6);
    last_switch = e.time;
  }
}

TEST(BurstSeparationTest, ZeroSeparationAllowsClustering) {
  SimConfig cfg;
  cfg.horizon = 5000.0;
  cfg.hi_speed = 2.0;
  cfg.demand.overrun_probability = 1.0;
  const SimResult clustered = simulate(table1_base(), cfg);
  cfg.min_overrun_separation = 100.0;
  const SimResult separated = simulate(table1_base(), cfg);
  EXPECT_GT(clustered.mode_switches, separated.mode_switches);
}

TEST(BurstSeparationTest, DutyCycleRespectsAnalyticBound) {
  SimConfig cfg;
  cfg.horizon = 50000.0;
  cfg.hi_speed = 2.0;
  cfg.demand.overrun_probability = 1.0;
  cfg.min_overrun_separation = 60.0;
  const SimResult r = simulate(table1_base(), cfg);
  double boosted = 0.0;
  for (double d : r.hi_dwell_times) boosted += d;
  // Delta_R(2) = 6, T_O = 60: duty cycle <= 10% (+ one-burst edge effect).
  EXPECT_LE(boosted / cfg.horizon, 6.0 / 60.0 + 6.0 / cfg.horizon + 1e-9);
}

}  // namespace
}  // namespace rbs::sim

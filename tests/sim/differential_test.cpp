// Differential suite: the event-driven kernel (sim/simulate.hpp) against the
// retired stepping engine (sim/reference_kernel.hpp, the oracle).
//
// The rewrite's contract is not "statistically similar" but *bit-identical*:
// both kernels must visit the same instants, consume the RNG streams in the
// same order and accumulate the same floating-point sums, so every field of
// SimMetrics -- and the full recorded trace -- compares equal with ==, no
// tolerances. A seeded corpus of generated task sets crossed with every
// protocol feature (jitter, offsets, faults, polled detection, DVFS latency,
// turbo budget, scripted arrivals, degraded service, LO overload) keeps both
// code paths honest; a campaign-invariance test pins the worker-count
// determinism contract on top of the new facade.
//
// The corpus itself (set generator, bit-identity comparator, feature matrix)
// lives in sim_corpus.hpp so the multicore suite can reuse it verbatim.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "campaign/runner.hpp"
#include "core/tuning.hpp"
#include "sim/reference_kernel.hpp"
#include "sim/simulate.hpp"
#include "sim/sim_corpus.hpp"

namespace rbs::sim {
namespace {

using testkit::config_corpus;
using testkit::expect_identical;
using testkit::make_set;

SimMetrics run_both_and_compare(const TaskSet& set, const SimConfig& config,
                                const std::string& label) {
  const Expected<SimMetrics> oracle = reference_simulate(set, config);
  EXPECT_TRUE(oracle.is_ok()) << label << ": oracle rejected config: "
                              << oracle.error_message();
  if (!oracle.is_ok()) return SimMetrics{};
  Simulator simulator;
  const Expected<SimReport> report = simulator.run(set, config);
  EXPECT_TRUE(report.is_ok()) << label << ": facade rejected config: "
                              << report.error_message();
  if (!report.is_ok()) return SimMetrics{};
  EXPECT_TRUE(report.value().completed) << label;
  EXPECT_EQ(report.value().termination, SimTermination::kHorizon) << label;
  expect_identical(report.value().metrics, oracle.value(), label);
  return oracle.value();
}

TEST(DifferentialTest, EventKernelMatchesOracleAcrossCorpus) {
  const auto corpus = config_corpus();
  // Coverage tallies: the corpus is only meaningful if it actually drives
  // every protocol dimension it claims to cross.
  std::uint64_t switches = 0, fallbacks = 0, faults = 0, misses = 0, throttles = 0,
                abandoned = 0, undetected = 0;
  for (std::uint64_t set_seed : {17u, 23u, 41u}) {
    const TaskSet set = make_set(set_seed, 0.6);
    for (const auto& [name, proto] : corpus) {
      for (std::uint64_t sim_seed = 1; sim_seed <= 3; ++sim_seed) {
        SimConfig cfg = proto;
        cfg.seed = set_seed * 100 + sim_seed;
        const SimMetrics metrics =
            run_both_and_compare(set, cfg,
                                 name + " set=" + std::to_string(set_seed) +
                                     " seed=" + std::to_string(cfg.seed));
        switches += metrics.mode_switches;
        fallbacks += metrics.budget_fallbacks;
        faults += metrics.faults_injected;
        misses += metrics.misses.size();
        throttles += metrics.throttle_downs;
        abandoned += metrics.jobs_abandoned;
        undetected += metrics.undetected_overruns;
      }
    }
  }
  EXPECT_GT(switches, 0u) << "corpus never switched to HI mode";
  EXPECT_GT(fallbacks, 0u) << "corpus never hit the turbo budget";
  EXPECT_GT(faults, 0u) << "corpus never injected a fault";
  EXPECT_GT(misses, 0u) << "corpus never missed a deadline";
  EXPECT_GT(throttles, 0u) << "corpus never throttled";
  EXPECT_GT(abandoned, 0u) << "corpus never abandoned a carry-over job";
  EXPECT_GT(undetected, 0u) << "corpus never slipped an overrun past the poll";
}

TEST(DifferentialTest, ScriptedArrivalsMatchOracle) {
  const TaskSet set({McTask::hi("h", 2, 6, 8, 20, 20), McTask::lo("l", 3, 15, 15)});
  SimConfig cfg;
  cfg.horizon = 100.0;
  cfg.hi_speed = 2.0;
  cfg.record_trace = true;
  // Same-time entries, an overrunning demand, a near-zero demand and a
  // release beyond the horizon -- every scripted edge in one run.
  cfg.scripted_arrivals = {
      {{0.0, 2.0}, {20.0, 7.0}, {20.0, 1.0}, {60.0, 1e-12}, {150.0, 2.0}},
      {{0.0, 3.0}, {30.0, 3.0}, {30.0, 2.0}, {45.0, 1.0}},
  };
  run_both_and_compare(set, cfg, "scripted");
}

TEST(DifferentialTest, ScriptedSameInstantBurstMatchesOracle) {
  const TaskSet set({McTask::hi("h", 1, 4, 6, 12, 12), McTask::lo("a", 1, 8, 8),
                     McTask::lo("b", 1, 10, 10)});
  SimConfig cfg;
  cfg.horizon = 60.0;
  cfg.hi_speed = 1.5;
  cfg.record_trace = true;
  cfg.scripted_arrivals = {
      {{0.0, 5.0}, {0.0, 1.0}, {24.0, 1.0}},  // back-to-back same-time entries
      {{0.0, 1.0}, {0.0, 1.0}, {0.0, 1.0}},
      {{12.0, 1.0}, {12.0, 1.0}},
  };
  run_both_and_compare(set, cfg, "same-instant burst");
}

TEST(DifferentialTest, DegradedLoServiceAndTerminationMatchOracle) {
  // Explicit degraded-service set: LO task with a stretched HI-mode period,
  // plus a terminated LO task (infinite HI period -> dropped in HI mode).
  const TaskSet set({McTask::hi("h", 2, 8, 10, 30, 30),
                     McTask::lo("keep", 3, 20, 20, 40, 40),
                     McTask::lo_terminated("drop", 2, 25, 25)});
  for (bool discard : {false, true}) {
    SimConfig cfg;
    cfg.horizon = 5000.0;
    cfg.hi_speed = 2.0;
    cfg.demand.overrun_probability = 0.4;
    cfg.discard_dropped_carryover = discard;
    cfg.record_trace = true;
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
      cfg.seed = seed;
      run_both_and_compare(set, cfg,
                           std::string("degraded discard=") + (discard ? "1" : "0") +
                               " seed=" + std::to_string(seed));
    }
  }
}

TEST(DifferentialTest, ReportsHonestPrefixUnderEventBudget) {
  const TaskSet set = make_set(17, 0.6);
  SimConfig cfg;
  cfg.horizon = 20000.0;
  cfg.hi_speed = 2.0;
  cfg.demand.overrun_probability = 0.3;
  SimLimits limits;
  limits.max_events = 100;
  Simulator simulator;
  const Expected<SimReport> report = simulator.run(set, cfg, limits);
  ASSERT_TRUE(report.is_ok());
  EXPECT_FALSE(report.value().completed);
  EXPECT_FALSE(report.value().exact());
  EXPECT_EQ(report.value().termination, SimTermination::kEventBudget);
  EXPECT_EQ(report.value().counters.events_processed, 100u);
  // The prefix horizon is honest: less than requested, covered exactly.
  EXPECT_LT(report.value().metrics.horizon, cfg.horizon);
  EXPECT_GT(report.value().metrics.horizon, 0.0);
}

TEST(DifferentialTest, ReportsHonestPrefixUnderJobBudget) {
  const TaskSet set = make_set(17, 0.6);
  SimConfig cfg;
  cfg.horizon = 20000.0;
  SimLimits limits;
  limits.max_jobs = 50;
  Simulator simulator;
  const Expected<SimReport> report = simulator.run(set, cfg, limits);
  ASSERT_TRUE(report.is_ok());
  EXPECT_FALSE(report.value().completed);
  EXPECT_EQ(report.value().termination, SimTermination::kJobBudget);
  EXPECT_GE(report.value().metrics.jobs_released, 50u);
  EXPECT_LT(report.value().metrics.horizon, cfg.horizon);
}

TEST(DifferentialTest, ReusedSimulatorMatchesFreshSimulator) {
  // The kernel reuses its calendar/pool/scratch across runs; reuse must not
  // leak state between runs.
  const TaskSet set_a = make_set(17, 0.6);
  const TaskSet set_b = make_set(23, 0.7);
  SimConfig cfg;
  cfg.horizon = 10000.0;
  cfg.hi_speed = 2.0;
  cfg.demand.overrun_probability = 0.4;
  cfg.release_jitter = 0.1;
  cfg.record_trace = true;

  Simulator reused;
  // Dirty the kernel with unrelated runs first.
  cfg.seed = 99;
  (void)reused.run(set_b, cfg).value();
  cfg.seed = 7;
  (void)reused.run(set_a, cfg).value();

  cfg.seed = 42;
  const SimReport warm = reused.run(set_a, cfg).value();
  Simulator fresh;
  const SimReport cold = fresh.run(set_a, cfg).value();
  expect_identical(warm.metrics, cold.metrics, "warm vs cold kernel");
}

TEST(DifferentialTest, CampaignInvariantAcrossWorkerCounts) {
  // jobs=1 vs jobs=8 must produce byte-identical per-item rows (the campaign
  // determinism contract, now running over the event-driven facade).
  const TaskSet set = make_set(17, 0.6);
  const auto run_rows = [&set](unsigned jobs) {
    campaign::CampaignOptions options;
    options.jobs = jobs;
    options.seed = 5;
    const campaign::CampaignRunner runner(options);
    return runner.map<std::string>(24, [&set](std::size_t index, Rng& rng) {
      thread_local Simulator simulator;  // reused per worker, exercising warm runs
      SimConfig cfg;
      cfg.horizon = 5000.0;
      cfg.hi_speed = 2.0;
      cfg.demand.overrun_probability = 0.3;
      cfg.release_jitter = 0.1;
      cfg.seed = static_cast<std::uint64_t>(rng.uniform_int(1, std::int64_t{1} << 40));
      const SimReport r = simulator.run(set, cfg).value();
      char buffer[160];
      std::snprintf(buffer, sizeof buffer, "%zu,%llu,%llu,%llu,%llu,%.17g", index,
                    static_cast<unsigned long long>(r.metrics.jobs_released),
                    static_cast<unsigned long long>(r.metrics.jobs_completed),
                    static_cast<unsigned long long>(r.metrics.mode_switches),
                    static_cast<unsigned long long>(r.metrics.preemptions),
                    r.metrics.busy_time);
      return std::string(buffer);
    });
  };
  const std::vector<std::string> serial = run_rows(1);
  const std::vector<std::string> parallel = run_rows(8);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i)
    EXPECT_EQ(serial[i], parallel[i]) << "item " << i;
}

}  // namespace
}  // namespace rbs::sim

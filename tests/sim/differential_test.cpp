// Differential suite: the event-driven kernel (sim/simulate.hpp) against the
// retired stepping engine (sim/reference_kernel.hpp, the oracle).
//
// The rewrite's contract is not "statistically similar" but *bit-identical*:
// both kernels must visit the same instants, consume the RNG streams in the
// same order and accumulate the same floating-point sums, so every field of
// SimMetrics -- and the full recorded trace -- compares equal with ==, no
// tolerances. A seeded corpus of generated task sets crossed with every
// protocol feature (jitter, offsets, faults, polled detection, DVFS latency,
// turbo budget, scripted arrivals, degraded service, LO overload) keeps both
// code paths honest; a campaign-invariance test pins the worker-count
// determinism contract on top of the new facade.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "campaign/runner.hpp"
#include "core/closed_form.hpp"
#include "core/tuning.hpp"
#include "gen/taskgen.hpp"
#include "sim/reference_kernel.hpp"
#include "sim/simulate.hpp"

namespace rbs::sim {
namespace {

TaskSet make_set(std::uint64_t seed, double u_bound) {
  Rng rng(seed);
  GenParams params;
  params.u_bound = u_bound;
  for (int attempt = 0; attempt < 100; ++attempt) {
    const auto skeleton = generate_task_set(params, rng);
    if (!skeleton) continue;
    const MinXResult mx = min_x_for_lo(*skeleton);
    if (!mx.feasible) continue;
    return skeleton->materialize(mx.x, 2.0);
  }
  ADD_FAILURE() << "could not generate task set for seed " << seed;
  return TaskSet({McTask::lo("fallback", 1, 10, 10)});
}

void expect_identical(const SimMetrics& a, const SimMetrics& b, const std::string& label) {
  SCOPED_TRACE(label);
  EXPECT_EQ(a.jobs_released, b.jobs_released);
  EXPECT_EQ(a.jobs_completed, b.jobs_completed);
  EXPECT_EQ(a.jobs_abandoned, b.jobs_abandoned);
  EXPECT_EQ(a.preemptions, b.preemptions);
  EXPECT_EQ(a.mode_switches, b.mode_switches);
  EXPECT_EQ(a.budget_fallbacks, b.budget_fallbacks);
  EXPECT_EQ(a.faults_injected, b.faults_injected);
  EXPECT_EQ(a.throttle_downs, b.throttle_downs);
  EXPECT_EQ(a.undetected_overruns, b.undetected_overruns);
  EXPECT_EQ(a.ended_in_hi_mode, b.ended_in_hi_mode);
  EXPECT_EQ(a.busy_time, b.busy_time);  // bit-exact, not NEAR
  EXPECT_EQ(a.horizon, b.horizon);

  ASSERT_EQ(a.misses.size(), b.misses.size());
  for (std::size_t i = 0; i < a.misses.size(); ++i) {
    EXPECT_EQ(a.misses[i].task_index, b.misses[i].task_index) << "miss " << i;
    EXPECT_EQ(a.misses[i].job_id, b.misses[i].job_id) << "miss " << i;
    EXPECT_EQ(a.misses[i].deadline, b.misses[i].deadline) << "miss " << i;
    EXPECT_EQ(a.misses[i].mode, b.misses[i].mode) << "miss " << i;
  }

  ASSERT_EQ(a.task_stats.size(), b.task_stats.size());
  for (std::size_t i = 0; i < a.task_stats.size(); ++i) {
    EXPECT_EQ(a.task_stats[i].released, b.task_stats[i].released) << "task " << i;
    EXPECT_EQ(a.task_stats[i].completed, b.task_stats[i].completed) << "task " << i;
    EXPECT_EQ(a.task_stats[i].misses, b.task_stats[i].misses) << "task " << i;
    EXPECT_EQ(a.task_stats[i].max_response, b.task_stats[i].max_response) << "task " << i;
    EXPECT_EQ(a.task_stats[i].total_response, b.task_stats[i].total_response) << "task " << i;
  }

  ASSERT_EQ(a.hi_dwell_times.size(), b.hi_dwell_times.size());
  for (std::size_t i = 0; i < a.hi_dwell_times.size(); ++i)
    EXPECT_EQ(a.hi_dwell_times[i], b.hi_dwell_times[i]) << "dwell " << i;

  ASSERT_EQ(a.trace.segments.size(), b.trace.segments.size());
  for (std::size_t i = 0; i < a.trace.segments.size(); ++i) {
    const TraceSegment& sa = a.trace.segments[i];
    const TraceSegment& sb = b.trace.segments[i];
    EXPECT_EQ(sa.start, sb.start) << "segment " << i;
    EXPECT_EQ(sa.end, sb.end) << "segment " << i;
    EXPECT_EQ(sa.task_index, sb.task_index) << "segment " << i;
    EXPECT_EQ(sa.job_id, sb.job_id) << "segment " << i;
    EXPECT_EQ(sa.speed, sb.speed) << "segment " << i;
    EXPECT_EQ(sa.mode, sb.mode) << "segment " << i;
  }
  ASSERT_EQ(a.trace.events.size(), b.trace.events.size());
  for (std::size_t i = 0; i < a.trace.events.size(); ++i) {
    const TraceEvent& ea = a.trace.events[i];
    const TraceEvent& eb = b.trace.events[i];
    EXPECT_EQ(ea.time, eb.time) << "event " << i;
    EXPECT_EQ(ea.kind, eb.kind) << "event " << i << " (" << to_string(ea.kind) << " vs "
                                << to_string(eb.kind) << ")";
    EXPECT_EQ(ea.task_index, eb.task_index) << "event " << i;
    EXPECT_EQ(ea.job_id, eb.job_id) << "event " << i;
  }
  ASSERT_EQ(a.trace.jobs.size(), b.trace.jobs.size());
  for (std::size_t i = 0; i < a.trace.jobs.size(); ++i) {
    EXPECT_EQ(a.trace.jobs[i].task_index, b.trace.jobs[i].task_index) << "job " << i;
    EXPECT_EQ(a.trace.jobs[i].job_id, b.trace.jobs[i].job_id) << "job " << i;
    EXPECT_EQ(a.trace.jobs[i].release, b.trace.jobs[i].release) << "job " << i;
    EXPECT_EQ(a.trace.jobs[i].demand, b.trace.jobs[i].demand) << "job " << i;
  }
}

SimMetrics run_both_and_compare(const TaskSet& set, const SimConfig& config,
                                const std::string& label) {
  const Expected<SimMetrics> oracle = reference_simulate(set, config);
  EXPECT_TRUE(oracle.is_ok()) << label << ": oracle rejected config: "
                              << oracle.error_message();
  if (!oracle.is_ok()) return SimMetrics{};
  Simulator simulator;
  const Expected<SimReport> report = simulator.run(set, config);
  EXPECT_TRUE(report.is_ok()) << label << ": facade rejected config: "
                              << report.error_message();
  if (!report.is_ok()) return SimMetrics{};
  EXPECT_TRUE(report.value().completed) << label;
  EXPECT_EQ(report.value().termination, SimTermination::kHorizon) << label;
  expect_identical(report.value().metrics, oracle.value(), label);
  return oracle.value();
}

/// The feature matrix: each entry turns on one protocol dimension (or an
/// adversarial combination) on top of a common overloadable base.
std::vector<std::pair<std::string, SimConfig>> config_corpus() {
  std::vector<std::pair<std::string, SimConfig>> corpus;
  SimConfig base;
  base.horizon = 20000.0;
  base.hi_speed = 2.0;
  base.demand.overrun_probability = 0.3;
  base.record_trace = true;

  corpus.emplace_back("periodic-overruns", base);

  {
    SimConfig cfg = base;
    cfg.release_jitter = 0.2;
    cfg.initial_offset_spread = 0.5;
    corpus.emplace_back("jitter+offsets", cfg);
  }
  {
    SimConfig cfg = base;
    cfg.min_overrun_separation = 500.0;
    cfg.demand.overrun_shape = DemandModel::OverrunShape::kUniform;
    corpus.emplace_back("separation+uniform-overruns", cfg);
  }
  {
    SimConfig cfg = base;
    cfg.demand.base_fraction_min = 0.4;
    cfg.demand.base_fraction_max = 1.2;  // eligible-without-overrun draws
    corpus.emplace_back("variable-demand", cfg);
  }
  {
    SimConfig cfg = base;
    cfg.speed_change_latency = 3.0;
    cfg.discard_dropped_carryover = true;
    corpus.emplace_back("dvfs-latency+discard", cfg);
  }
  {
    SimConfig cfg = base;
    cfg.max_boost_duration = 40.0;  // force turbo-budget fallbacks
    corpus.emplace_back("turbo-budget", cfg);
  }
  {
    SimConfig cfg = base;
    cfg.faults.detection_period = 50.0;  // coarse polled budget monitor
    // Uniform overruns give demands just past C(LO): some jobs finish
    // before the next poll, exercising the undetected-overrun path.
    cfg.demand.overrun_shape = DemandModel::OverrunShape::kUniform;
    corpus.emplace_back("polled-detection", cfg);
  }
  {
    SimConfig cfg = base;
    cfg.faults.random.p_deny = 0.2;
    cfg.faults.random.p_partial = 0.3;
    cfg.faults.random.partial_min = 0.3;
    cfg.faults.random.partial_max = 0.9;
    cfg.faults.random.p_late = 0.3;
    cfg.faults.random.late_min = 1.0;
    cfg.faults.random.late_max = 10.0;
    cfg.faults.random.p_throttle = 0.2;
    cfg.faults.random.throttle_after_min = 5.0;
    cfg.faults.random.throttle_after_max = 30.0;
    cfg.speed_change_latency = 1.0;
    corpus.emplace_back("random-faults", cfg);
  }
  {
    SimConfig cfg = base;
    cfg.lo_speed = 1.5;
    cfg.hi_speed = 1.2;  // slowdown systems (paper's Example 1, s_min < 1)
    corpus.emplace_back("hi-slower-than-lo", cfg);
  }
  {
    SimConfig cfg = base;
    cfg.horizon = 5000.0;
    cfg.demand.overrun_probability = 0.9;  // overload: frequent switches, misses
    cfg.release_jitter = 0.05;
    cfg.max_boost_duration = 25.0;
    cfg.faults.detection_period = 4.0;
    cfg.faults.random.p_deny = 0.5;
    corpus.emplace_back("adversarial-combination", cfg);
  }
  return corpus;
}

TEST(DifferentialTest, EventKernelMatchesOracleAcrossCorpus) {
  const auto corpus = config_corpus();
  // Coverage tallies: the corpus is only meaningful if it actually drives
  // every protocol dimension it claims to cross.
  std::uint64_t switches = 0, fallbacks = 0, faults = 0, misses = 0, throttles = 0,
                abandoned = 0, undetected = 0;
  for (std::uint64_t set_seed : {17u, 23u, 41u}) {
    const TaskSet set = make_set(set_seed, 0.6);
    for (const auto& [name, proto] : corpus) {
      for (std::uint64_t sim_seed = 1; sim_seed <= 3; ++sim_seed) {
        SimConfig cfg = proto;
        cfg.seed = set_seed * 100 + sim_seed;
        const SimMetrics metrics =
            run_both_and_compare(set, cfg,
                                 name + " set=" + std::to_string(set_seed) +
                                     " seed=" + std::to_string(cfg.seed));
        switches += metrics.mode_switches;
        fallbacks += metrics.budget_fallbacks;
        faults += metrics.faults_injected;
        misses += metrics.misses.size();
        throttles += metrics.throttle_downs;
        abandoned += metrics.jobs_abandoned;
        undetected += metrics.undetected_overruns;
      }
    }
  }
  EXPECT_GT(switches, 0u) << "corpus never switched to HI mode";
  EXPECT_GT(fallbacks, 0u) << "corpus never hit the turbo budget";
  EXPECT_GT(faults, 0u) << "corpus never injected a fault";
  EXPECT_GT(misses, 0u) << "corpus never missed a deadline";
  EXPECT_GT(throttles, 0u) << "corpus never throttled";
  EXPECT_GT(abandoned, 0u) << "corpus never abandoned a carry-over job";
  EXPECT_GT(undetected, 0u) << "corpus never slipped an overrun past the poll";
}

TEST(DifferentialTest, ScriptedArrivalsMatchOracle) {
  const TaskSet set({McTask::hi("h", 2, 6, 8, 20, 20), McTask::lo("l", 3, 15, 15)});
  SimConfig cfg;
  cfg.horizon = 100.0;
  cfg.hi_speed = 2.0;
  cfg.record_trace = true;
  // Same-time entries, an overrunning demand, a near-zero demand and a
  // release beyond the horizon -- every scripted edge in one run.
  cfg.scripted_arrivals = {
      {{0.0, 2.0}, {20.0, 7.0}, {20.0, 1.0}, {60.0, 1e-12}, {150.0, 2.0}},
      {{0.0, 3.0}, {30.0, 3.0}, {30.0, 2.0}, {45.0, 1.0}},
  };
  run_both_and_compare(set, cfg, "scripted");
}

TEST(DifferentialTest, ScriptedSameInstantBurstMatchesOracle) {
  const TaskSet set({McTask::hi("h", 1, 4, 6, 12, 12), McTask::lo("a", 1, 8, 8),
                     McTask::lo("b", 1, 10, 10)});
  SimConfig cfg;
  cfg.horizon = 60.0;
  cfg.hi_speed = 1.5;
  cfg.record_trace = true;
  cfg.scripted_arrivals = {
      {{0.0, 5.0}, {0.0, 1.0}, {24.0, 1.0}},  // back-to-back same-time entries
      {{0.0, 1.0}, {0.0, 1.0}, {0.0, 1.0}},
      {{12.0, 1.0}, {12.0, 1.0}},
  };
  run_both_and_compare(set, cfg, "same-instant burst");
}

TEST(DifferentialTest, DegradedLoServiceAndTerminationMatchOracle) {
  // Explicit degraded-service set: LO task with a stretched HI-mode period,
  // plus a terminated LO task (infinite HI period -> dropped in HI mode).
  const TaskSet set({McTask::hi("h", 2, 8, 10, 30, 30),
                     McTask::lo("keep", 3, 20, 20, 40, 40),
                     McTask::lo_terminated("drop", 2, 25, 25)});
  for (bool discard : {false, true}) {
    SimConfig cfg;
    cfg.horizon = 5000.0;
    cfg.hi_speed = 2.0;
    cfg.demand.overrun_probability = 0.4;
    cfg.discard_dropped_carryover = discard;
    cfg.record_trace = true;
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
      cfg.seed = seed;
      run_both_and_compare(set, cfg,
                           std::string("degraded discard=") + (discard ? "1" : "0") +
                               " seed=" + std::to_string(seed));
    }
  }
}

TEST(DifferentialTest, ReportsHonestPrefixUnderEventBudget) {
  const TaskSet set = make_set(17, 0.6);
  SimConfig cfg;
  cfg.horizon = 20000.0;
  cfg.hi_speed = 2.0;
  cfg.demand.overrun_probability = 0.3;
  SimLimits limits;
  limits.max_events = 100;
  Simulator simulator;
  const Expected<SimReport> report = simulator.run(set, cfg, limits);
  ASSERT_TRUE(report.is_ok());
  EXPECT_FALSE(report.value().completed);
  EXPECT_FALSE(report.value().exact());
  EXPECT_EQ(report.value().termination, SimTermination::kEventBudget);
  EXPECT_EQ(report.value().counters.events_processed, 100u);
  // The prefix horizon is honest: less than requested, covered exactly.
  EXPECT_LT(report.value().metrics.horizon, cfg.horizon);
  EXPECT_GT(report.value().metrics.horizon, 0.0);
}

TEST(DifferentialTest, ReportsHonestPrefixUnderJobBudget) {
  const TaskSet set = make_set(17, 0.6);
  SimConfig cfg;
  cfg.horizon = 20000.0;
  SimLimits limits;
  limits.max_jobs = 50;
  Simulator simulator;
  const Expected<SimReport> report = simulator.run(set, cfg, limits);
  ASSERT_TRUE(report.is_ok());
  EXPECT_FALSE(report.value().completed);
  EXPECT_EQ(report.value().termination, SimTermination::kJobBudget);
  EXPECT_GE(report.value().metrics.jobs_released, 50u);
  EXPECT_LT(report.value().metrics.horizon, cfg.horizon);
}

TEST(DifferentialTest, ReusedSimulatorMatchesFreshSimulator) {
  // The kernel reuses its calendar/pool/scratch across runs; reuse must not
  // leak state between runs.
  const TaskSet set_a = make_set(17, 0.6);
  const TaskSet set_b = make_set(23, 0.7);
  SimConfig cfg;
  cfg.horizon = 10000.0;
  cfg.hi_speed = 2.0;
  cfg.demand.overrun_probability = 0.4;
  cfg.release_jitter = 0.1;
  cfg.record_trace = true;

  Simulator reused;
  // Dirty the kernel with unrelated runs first.
  cfg.seed = 99;
  (void)reused.run(set_b, cfg).value();
  cfg.seed = 7;
  (void)reused.run(set_a, cfg).value();

  cfg.seed = 42;
  const SimReport warm = reused.run(set_a, cfg).value();
  Simulator fresh;
  const SimReport cold = fresh.run(set_a, cfg).value();
  expect_identical(warm.metrics, cold.metrics, "warm vs cold kernel");
}

TEST(DifferentialTest, CampaignInvariantAcrossWorkerCounts) {
  // jobs=1 vs jobs=8 must produce byte-identical per-item rows (the campaign
  // determinism contract, now running over the event-driven facade).
  const TaskSet set = make_set(17, 0.6);
  const auto run_rows = [&set](unsigned jobs) {
    campaign::CampaignOptions options;
    options.jobs = jobs;
    options.seed = 5;
    const campaign::CampaignRunner runner(options);
    return runner.map<std::string>(24, [&set](std::size_t index, Rng& rng) {
      thread_local Simulator simulator;  // reused per worker, exercising warm runs
      SimConfig cfg;
      cfg.horizon = 5000.0;
      cfg.hi_speed = 2.0;
      cfg.demand.overrun_probability = 0.3;
      cfg.release_jitter = 0.1;
      cfg.seed = static_cast<std::uint64_t>(rng.uniform_int(1, std::int64_t{1} << 40));
      const SimReport r = simulator.run(set, cfg).value();
      char buffer[160];
      std::snprintf(buffer, sizeof buffer, "%zu,%llu,%llu,%llu,%llu,%.17g", index,
                    static_cast<unsigned long long>(r.metrics.jobs_released),
                    static_cast<unsigned long long>(r.metrics.jobs_completed),
                    static_cast<unsigned long long>(r.metrics.mode_switches),
                    static_cast<unsigned long long>(r.metrics.preemptions),
                    r.metrics.busy_time);
      return std::string(buffer);
    });
  };
  const std::vector<std::string> serial = run_rows(1);
  const std::vector<std::string> parallel = run_rows(8);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i)
    EXPECT_EQ(serial[i], parallel[i]) << "item " << i;
}

}  // namespace
}  // namespace rbs::sim

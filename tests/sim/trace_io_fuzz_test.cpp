// Round-trip and fuzz tests for the JSON trace reader (sim/trace_io.hpp):
// serialize -> parse must be lossless, and truncated or corrupted input must
// come back as a clean Status error, never a crash.
#include "sim/trace_io.hpp"

#include <gtest/gtest.h>

#include <string>

#include "gen/paper_examples.hpp"
#include "gen/rng.hpp"
#include "sim/simulator.hpp"

namespace rbs::sim {
namespace {

SimResult faulted_run() {
  SimConfig cfg;
  cfg.horizon = 500.0;
  cfg.hi_speed = 2.0;
  cfg.demand.overrun_probability = 0.8;
  cfg.record_trace = true;
  cfg.faults.episodes.resize(2);
  cfg.faults.episodes[0].achieved_speed = 1.5;
  cfg.faults.episodes[1].deny_boost = true;
  cfg.faults.recycle = true;
  cfg.faults.detection_period = 1.0;
  return simulate(table1_base(), cfg);
}

TEST(TraceRoundTripTest, SerializeParseIsLossless) {
  const TaskSet set = table1_base();
  const SimResult result = faulted_run();
  ASSERT_FALSE(result.trace.events.empty());
  ASSERT_FALSE(result.trace.jobs.empty());

  const Expected<TraceDocument> parsed = parse_trace_json(trace_to_json(set, result));
  ASSERT_TRUE(parsed.is_ok()) << parsed.error_message();
  const TraceDocument& doc = parsed.value();

  ASSERT_EQ(doc.tasks.size(), set.size());
  for (std::size_t i = 0; i < set.size(); ++i) EXPECT_EQ(doc.tasks[i], set[i].name());

  ASSERT_EQ(doc.trace.segments.size(), result.trace.segments.size());
  for (std::size_t i = 0; i < doc.trace.segments.size(); ++i) {
    const TraceSegment &a = doc.trace.segments[i], &b = result.trace.segments[i];
    EXPECT_EQ(a.start, b.start);  // exact: max_digits10 round-trips doubles
    EXPECT_EQ(a.end, b.end);
    EXPECT_EQ(a.task_index, b.task_index);
    EXPECT_EQ(a.job_id, b.job_id);
    EXPECT_EQ(a.speed, b.speed);
    EXPECT_EQ(a.mode, b.mode);
  }

  ASSERT_EQ(doc.trace.events.size(), result.trace.events.size());
  for (std::size_t i = 0; i < doc.trace.events.size(); ++i) {
    const TraceEvent &a = doc.trace.events[i], &b = result.trace.events[i];
    EXPECT_EQ(a.time, b.time);
    EXPECT_EQ(a.kind, b.kind);
    EXPECT_EQ(a.task_index, b.task_index);
    EXPECT_EQ(a.job_id, b.job_id);
  }

  ASSERT_EQ(doc.trace.jobs.size(), result.trace.jobs.size());
  for (std::size_t i = 0; i < doc.trace.jobs.size(); ++i) {
    const JobRecord &a = doc.trace.jobs[i], &b = result.trace.jobs[i];
    EXPECT_EQ(a.task_index, b.task_index);
    EXPECT_EQ(a.job_id, b.job_id);
    EXPECT_EQ(a.release, b.release);
    EXPECT_EQ(a.demand, b.demand);
  }

  EXPECT_EQ(doc.summary.jobs_released, result.jobs_released);
  EXPECT_EQ(doc.summary.jobs_completed, result.jobs_completed);
  EXPECT_EQ(doc.summary.deadline_misses, result.misses.size());
  EXPECT_EQ(doc.summary.mode_switches, result.mode_switches);
  EXPECT_EQ(doc.summary.faults_injected, result.faults_injected);
  EXPECT_EQ(doc.summary.undetected_overruns, result.undetected_overruns);
  EXPECT_EQ(doc.summary.busy_time, result.busy_time);
  EXPECT_EQ(doc.summary.horizon, result.horizon);
}

TEST(TraceRoundTripTest, EscapedTaskNamesSurvive) {
  const TaskSet odd({McTask::lo("we\"ird\\na\nme", 1, 10, 10)});
  SimConfig cfg;
  cfg.horizon = 30.0;
  cfg.record_trace = true;
  const Expected<TraceDocument> parsed =
      parse_trace_json(trace_to_json(odd, simulate(odd, cfg)));
  ASSERT_TRUE(parsed.is_ok()) << parsed.error_message();
  EXPECT_EQ(parsed.value().tasks[0], "we\"ird\\na\nme");
}

TEST(TraceFuzzTest, TruncationAlwaysFailsCleanly) {
  const std::string json = trace_to_json(table1_base(), faulted_run());
  // Every strict prefix that cuts real content must parse to an error (the
  // only survivable cuts are inside the trailing whitespace).
  for (std::size_t len = 0; len + 2 < json.size(); len += 7) {
    const Expected<TraceDocument> parsed = parse_trace_json(json.substr(0, len));
    EXPECT_FALSE(parsed.is_ok()) << "prefix of length " << len << " parsed";
    EXPECT_FALSE(parsed.error_message().empty());
  }
  EXPECT_TRUE(parse_trace_json(json).is_ok());
}

TEST(TraceFuzzTest, RandomCorruptionNeverCrashes) {
  const std::string json = trace_to_json(table1_base(), faulted_run());
  Rng rng(2026);
  for (int round = 0; round < 200; ++round) {
    std::string mutated = json;
    const int flips = static_cast<int>(rng.uniform_int(1, 8));
    for (int f = 0; f < flips; ++f) {
      const auto pos = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(mutated.size()) - 1));
      mutated[pos] = static_cast<char>(rng.uniform_int(32, 126));
    }
    // Must return either a clean error or a document -- never crash/throw.
    const Expected<TraceDocument> parsed = parse_trace_json(mutated);
    if (!parsed.is_ok()) EXPECT_FALSE(parsed.error_message().empty());
  }
}

TEST(TraceParseTest, FieldOrderIsIrrelevantAndUnknownFieldsIgnored) {
  const Expected<TraceDocument> parsed = parse_trace_json(
      R"({"future_field": [1, 2, {"x": null}],
          "summary": {"horizon": 10.5, "jobs_released": 3, "novel_counter": 7},
          "events": [{"job": 1, "task": 0, "kind": "release", "time": 0.25}],
          "segments": [],
          "tasks": ["only"]})");
  ASSERT_TRUE(parsed.is_ok()) << parsed.error_message();
  EXPECT_EQ(parsed.value().tasks.size(), 1u);
  ASSERT_EQ(parsed.value().trace.events.size(), 1u);
  EXPECT_EQ(parsed.value().trace.events[0].kind, TraceEvent::Kind::kRelease);
  EXPECT_EQ(parsed.value().trace.events[0].time, 0.25);
  EXPECT_EQ(parsed.value().summary.jobs_released, 3u);
  EXPECT_EQ(parsed.value().summary.horizon, 10.5);
}

TEST(TraceParseTest, StructuralErrorsAreDescriptive) {
  EXPECT_FALSE(parse_trace_json(""));
  EXPECT_FALSE(parse_trace_json("[]"));  // not an object
  EXPECT_FALSE(parse_trace_json("{\"tasks\": 5, \"segments\": [], \"events\": [], "
                                "\"summary\": {}}"));
  const Expected<TraceDocument> bad_kind = parse_trace_json(
      R"({"tasks": [], "segments": [],
          "events": [{"time": 0, "kind": "teleport", "task": 0, "job": 1}],
          "summary": {}})");
  ASSERT_FALSE(bad_kind.is_ok());
  EXPECT_NE(bad_kind.error_message().find("teleport"), std::string::npos);

  const Expected<TraceDocument> bad_mode = parse_trace_json(
      R"({"tasks": [], "events": [],
          "segments": [{"start": 0, "end": 1, "task": 0, "job": 1, "speed": 1, "mode": "XX"}],
          "summary": {}})");
  ASSERT_FALSE(bad_mode.is_ok());
  EXPECT_NE(bad_mode.error_message().find("mode"), std::string::npos);

  EXPECT_FALSE(parse_trace_json("{\"tasks\": []} trailing"));
}

TEST(TraceParseTest, MissingFileIsAnError) {
  const Expected<TraceDocument> missing = read_trace_json_file("/nonexistent/trace.json");
  ASSERT_FALSE(missing.is_ok());
  EXPECT_NE(missing.error_message().find("cannot open"), std::string::npos);
}

TEST(TraceParseTest, EventKindNamesRoundTripThroughParser) {
  for (const TraceEvent::Kind kind :
       {TraceEvent::Kind::kRelease, TraceEvent::Kind::kCompletion,
        TraceEvent::Kind::kOverrunTrigger, TraceEvent::Kind::kModeSwitchHi,
        TraceEvent::Kind::kReset, TraceEvent::Kind::kDeadlineMiss,
        TraceEvent::Kind::kJobAbandoned, TraceEvent::Kind::kBudgetFallback,
        TraceEvent::Kind::kFaultEngaged, TraceEvent::Kind::kThrottleDown,
        TraceEvent::Kind::kUndetectedOverrun}) {
    TraceEvent::Kind back = TraceEvent::Kind::kRelease;
    ASSERT_TRUE(parse_event_kind(to_string(kind), back)) << to_string(kind);
    EXPECT_EQ(back, kind);
  }
  TraceEvent::Kind out = TraceEvent::Kind::kRelease;
  EXPECT_FALSE(parse_event_kind("not-an-event", out));
}

}  // namespace
}  // namespace rbs::sim

// Tests for scripted arrivals and the UUniFast generator.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "gen/paper_examples.hpp"
#include "gen/rng.hpp"
#include "gen/taskgen.hpp"
#include "sim/simulator.hpp"

namespace rbs::sim {
namespace {

TEST(ScriptedTest, ExactReleasesAndDemands) {
  const TaskSet set({McTask::lo("a", 5, 50, 50), McTask::lo("b", 5, 50, 50)});
  SimConfig cfg;
  cfg.horizon = 100.0;
  cfg.record_trace = true;
  cfg.scripted_arrivals = {
      {{0.0, 3.0}, {60.0, 2.0}},
      {{10.0, 4.0}},
  };
  const SimResult r = simulate(set, cfg);
  EXPECT_EQ(r.jobs_released, 3u);
  EXPECT_EQ(r.jobs_completed, 3u);
  EXPECT_NEAR(r.busy_time, 3.0 + 2.0 + 4.0, 1e-6);
  std::vector<double> releases;
  for (const TraceEvent& e : r.trace.events)
    if (e.kind == TraceEvent::Kind::kRelease) releases.push_back(e.time);
  EXPECT_EQ(releases, (std::vector<double>{0.0, 10.0, 60.0}));
}

TEST(ScriptedTest, EmptyListReleasesNothing) {
  const TaskSet set({McTask::lo("a", 5, 50, 50), McTask::lo("b", 5, 50, 50)});
  SimConfig cfg;
  cfg.horizon = 100.0;
  cfg.scripted_arrivals = {{{0.0, 5.0}}, {}};
  const SimResult r = simulate(set, cfg);
  EXPECT_EQ(r.jobs_released, 1u);
  EXPECT_EQ(r.task_stats[1].released, 0u);
}

TEST(ScriptedTest, DemandAboveBudgetTriggersSwitch) {
  const TaskSet set = table1_base();
  SimConfig cfg;
  cfg.horizon = 20.0;
  cfg.hi_speed = 2.0;
  cfg.record_trace = true;
  // tau1 overruns (demand 5 > C(LO)=3); tau2 normal.
  cfg.scripted_arrivals = {{{0.0, 5.0}}, {{0.0, 2.0}}};
  const SimResult r = simulate(set, cfg);
  EXPECT_EQ(r.mode_switches, 1u);
  EXPECT_FALSE(r.deadline_missed());
  double switch_time = -1;
  for (const TraceEvent& e : r.trace.events)
    if (e.kind == TraceEvent::Kind::kModeSwitchHi) switch_time = e.time;
  EXPECT_NEAR(switch_time, 3.0, 1e-6);  // budget C(LO)=3 at unit speed
}

TEST(ScriptedTest, DroppedTaskReleaseDeferredPastEpisode) {
  // h overruns at t=2 and stays busy until 2 + 6/2 = 5; the terminated LO
  // task's scripted release at t=3 must slide to the reset.
  const TaskSet set({McTask::hi("h", 2, 8, 4, 10, 10),
                     McTask::lo_terminated("l", 1, 10, 10)});
  SimConfig cfg;
  cfg.horizon = 20.0;
  cfg.hi_speed = 2.0;
  cfg.record_trace = true;
  cfg.scripted_arrivals = {{{0.0, 8.0}}, {{3.0, 1.0}}};
  const SimResult r = simulate(set, cfg);
  double lo_release = -1.0, reset_time = -1.0;
  for (const TraceEvent& e : r.trace.events) {
    if (e.kind == TraceEvent::Kind::kRelease && e.task_index == 1) lo_release = e.time;
    if (e.kind == TraceEvent::Kind::kReset && reset_time < 0) reset_time = e.time;
  }
  ASSERT_GE(reset_time, 0.0);
  EXPECT_NEAR(lo_release, reset_time, 1e-6);
}

TEST(ScriptedTest, DeterministicRegressionScenario) {
  // The full Table I episode as a golden regression: overrun at 3, tau2
  // completes at 4, tau1 at 5, reset at 5 (speed 2).
  const TaskSet set = table1_base();
  SimConfig cfg;
  cfg.horizon = 10.0;
  cfg.hi_speed = 2.0;
  cfg.record_trace = true;
  cfg.scripted_arrivals = {{{0.0, 5.0}}, {{0.0, 2.0}}};
  const SimResult r = simulate(set, cfg);
  ASSERT_EQ(r.hi_dwell_times.size(), 1u);
  EXPECT_NEAR(r.hi_dwell_times[0], 2.0, 1e-6);  // switch at 3, reset at 5
  EXPECT_NEAR(r.task_stats[0].max_response, 5.0, 1e-6);
  EXPECT_NEAR(r.task_stats[1].max_response, 4.0, 1e-6);
}

}  // namespace
}  // namespace rbs::sim

namespace rbs {
namespace {

TEST(UUniFastTest, SumsToTarget) {
  Rng rng(5);
  for (double u : {0.3, 0.7, 1.5})
    for (int n : {1, 3, 10}) {
      const std::vector<double> utils = uunifast(n, u, rng);
      ASSERT_EQ(utils.size(), static_cast<std::size_t>(n));
      const double sum = std::accumulate(utils.begin(), utils.end(), 0.0);
      EXPECT_NEAR(sum, u, 1e-12);
      for (double v : utils) EXPECT_GE(v, 0.0);
    }
}

TEST(UUniFastTest, ZeroTasksEmpty) {
  Rng rng(6);
  EXPECT_TRUE(uunifast(0, 0.5, rng).empty());
}

TEST(UUniFastTest, SetGeneratorProducesValidSkeleton) {
  Rng rng(7);
  UUniFastParams params;
  params.n_tasks = 12;
  params.u_total_lo = 0.6;
  const ImplicitSet set = generate_uunifast_set(params, rng);
  ASSERT_EQ(set.size(), 12u);
  // Rounding drifts the total a little; it must stay in the neighbourhood.
  EXPECT_NEAR(set.u_total_lo(), 0.6, 0.15);
  for (const ImplicitTask& t : set.tasks()) {
    EXPECT_GE(t.c_lo, 1);
    EXPECT_LE(t.c_hi, t.period);
  }
}

TEST(UUniFastTest, DeterministicBySeed) {
  UUniFastParams params;
  Rng a(9), b(9);
  const ImplicitSet sa = generate_uunifast_set(params, a);
  const ImplicitSet sb = generate_uunifast_set(params, b);
  for (std::size_t i = 0; i < sa.size(); ++i) {
    EXPECT_EQ(sa.tasks()[i].period, sb.tasks()[i].period);
    EXPECT_EQ(sa.tasks()[i].c_lo, sb.tasks()[i].c_lo);
  }
}

}  // namespace
}  // namespace rbs

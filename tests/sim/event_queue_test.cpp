// Property tests of the deterministic calendar (sim/event_queue.hpp): pops
// come out time-ordered, ties break by the fixed (kind, index, stamp) rule,
// and the pop sequence is independent of push order -- the foundation of the
// event kernel's byte-reproducibility.
#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "gen/rng.hpp"

namespace rbs::sim {
namespace {

std::vector<Event> drain(EventQueue& queue) {
  std::vector<Event> out;
  out.reserve(queue.size());
  while (!queue.empty()) {
    out.push_back(queue.top());
    queue.pop();
  }
  return out;
}

std::vector<Event> random_events(std::uint64_t seed, std::size_t n) {
  Rng rng(seed);
  std::vector<Event> events;
  events.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    Event e;
    // Coarse time grid to force plenty of exact ties.
    e.time = static_cast<double>(rng.uniform_int(0, 50));
    e.kind = static_cast<EventKind>(rng.uniform_int(0, 7));
    e.index = static_cast<std::uint32_t>(rng.uniform_int(0, 5));
    e.stamp = static_cast<std::uint64_t>(rng.uniform_int(0, 3));
    events.push_back(e);
  }
  return events;
}

TEST(EventQueueTest, PopsAreTimeOrdered) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    EventQueue queue;
    for (const Event& e : random_events(seed, 300)) queue.push(e);
    const std::vector<Event> popped = drain(queue);
    ASSERT_EQ(popped.size(), 300u);
    for (std::size_t i = 1; i < popped.size(); ++i)
      EXPECT_LE(popped[i - 1].time, popped[i].time) << "seed " << seed << " pop " << i;
  }
}

TEST(EventQueueTest, PopsFollowTotalOrder) {
  // Every adjacent pair must satisfy the full (time, kind, index, stamp)
  // order, not just the time component.
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    EventQueue queue;
    for (const Event& e : random_events(seed, 300)) queue.push(e);
    const std::vector<Event> popped = drain(queue);
    for (std::size_t i = 1; i < popped.size(); ++i)
      EXPECT_FALSE(event_before(popped[i], popped[i - 1]))
          << "seed " << seed << " pop " << i << " out of order";
  }
}

TEST(EventQueueTest, SameInstantTiesBreakByKindThenIndexThenStamp) {
  EventQueue queue;
  queue.push({5.0, EventKind::kRelease, 2, 1});
  queue.push({5.0, EventKind::kCompletion, 0, 9});
  queue.push({5.0, EventKind::kRelease, 0, 3});
  queue.push({5.0, EventKind::kRelease, 0, 2});
  queue.push({5.0, EventKind::kBudgetPoll, 0, 1});
  const std::vector<Event> popped = drain(queue);
  ASSERT_EQ(popped.size(), 5u);
  EXPECT_EQ(popped[0].kind, EventKind::kCompletion);
  EXPECT_EQ(popped[1].kind, EventKind::kBudgetPoll);
  EXPECT_EQ(popped[2].kind, EventKind::kRelease);
  EXPECT_EQ(popped[2].index, 0u);
  EXPECT_EQ(popped[2].stamp, 2u);
  EXPECT_EQ(popped[3].stamp, 3u);
  EXPECT_EQ(popped[4].index, 2u);
}

TEST(EventQueueTest, PopSequenceIndependentOfPushOrder) {
  // The determinism guarantee: any permutation of the same multiset of
  // events drains in exactly the same sequence.
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    std::vector<Event> events = random_events(seed, 200);
    EventQueue reference_queue;
    for (const Event& e : events) reference_queue.push(e);
    const std::vector<Event> reference = drain(reference_queue);

    Rng shuffle_rng(seed ^ 0xabcdef);
    for (int round = 0; round < 5; ++round) {
      for (std::size_t i = events.size(); i > 1; --i)
        std::swap(events[i - 1],
                  events[static_cast<std::size_t>(
                      shuffle_rng.uniform_int(0, static_cast<std::int64_t>(i) - 1))]);
      EventQueue queue;
      for (const Event& e : events) queue.push(e);
      const std::vector<Event> popped = drain(queue);
      ASSERT_EQ(popped.size(), reference.size());
      for (std::size_t i = 0; i < popped.size(); ++i) {
        EXPECT_EQ(popped[i].time, reference[i].time) << "seed " << seed << " pop " << i;
        EXPECT_EQ(popped[i].kind, reference[i].kind) << "seed " << seed << " pop " << i;
        EXPECT_EQ(popped[i].index, reference[i].index) << "seed " << seed << " pop " << i;
        EXPECT_EQ(popped[i].stamp, reference[i].stamp) << "seed " << seed << " pop " << i;
      }
    }
  }
}

TEST(EventQueueTest, InterleavedPushPopKeepsOrder) {
  // Pushes interleaved with pops (the kernel's actual usage) must still
  // never emit an event ordered before one already emitted at a later time.
  Rng rng(7);
  EventQueue queue;
  double last_popped = -1.0;
  std::size_t pushed = 0, popped_count = 0;
  for (int step = 0; step < 2000; ++step) {
    if (queue.empty() || rng.bernoulli(0.55)) {
      Event e;
      // New events land at or after the current front (as in a simulation:
      // wake-ups are never scheduled in the past).
      const double base = queue.empty() ? last_popped + 1.0 : queue.top().time;
      e.time = base + static_cast<double>(rng.uniform_int(0, 20));
      e.kind = static_cast<EventKind>(rng.uniform_int(0, 7));
      e.index = static_cast<std::uint32_t>(rng.uniform_int(0, 5));
      e.stamp = static_cast<std::uint64_t>(step);
      queue.push(e);
      ++pushed;
    } else {
      EXPECT_GE(queue.top().time, last_popped);
      last_popped = queue.top().time;
      queue.pop();
      ++popped_count;
    }
  }
  EXPECT_EQ(queue.pushes(), pushed);
  EXPECT_EQ(queue.pops(), popped_count);
  EXPECT_EQ(queue.size(), pushed - popped_count);
  EXPECT_GE(queue.peak_size(), queue.size());
}

TEST(EventQueueTest, ClearResetsCounters) {
  EventQueue queue;
  queue.push({1.0, EventKind::kRelease, 0, 1});
  queue.pop();
  queue.push({2.0, EventKind::kRelease, 0, 2});
  queue.clear();
  EXPECT_TRUE(queue.empty());
  EXPECT_EQ(queue.pushes(), 0u);
  EXPECT_EQ(queue.pops(), 0u);
  EXPECT_EQ(queue.peak_size(), 0u);
}

}  // namespace
}  // namespace rbs::sim

// One unit test per typed rejection of the simulation facade's input
// validation (validate_config / validate_limits): every malformed field --
// NaN, infinity, wrong sign, out-of-range probability, ill-formed script,
// zero budget -- must come back as a Status error through sim::simulate(),
// never as an exception or an entered event loop.
#include <gtest/gtest.h>

#include <limits>

#include "sim/simulate.hpp"
#include "sim/simulator.hpp"

namespace rbs::sim {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();

TaskSet two_tasks() {
  return TaskSet({McTask::hi("h", 2, 6, 8, 20, 20), McTask::lo("l", 3, 15, 15)});
}

/// The config must be rejected by the facade with a message mentioning the
/// offending field.
void expect_rejected(const SimConfig& cfg, const std::string& field) {
  const TaskSet set = two_tasks();
  Simulator simulator;
  const Expected<SimReport> report = simulator.run(set, cfg);
  ASSERT_FALSE(report.is_ok()) << "expected rejection for " << field;
  EXPECT_NE(report.error_message().find(field), std::string::npos)
      << "error was: " << report.error_message();
}

TEST(SimConfigValidationTest, RejectsNaNHorizon) {
  SimConfig cfg;
  cfg.horizon = kNaN;
  expect_rejected(cfg, "horizon");
}

TEST(SimConfigValidationTest, RejectsNegativeHorizon) {
  SimConfig cfg;
  cfg.horizon = -10.0;
  expect_rejected(cfg, "horizon");
}

TEST(SimConfigValidationTest, RejectsZeroHorizon) {
  SimConfig cfg;
  cfg.horizon = 0.0;
  expect_rejected(cfg, "horizon");
}

TEST(SimConfigValidationTest, RejectsInfiniteHorizon) {
  SimConfig cfg;
  cfg.horizon = kInf;
  expect_rejected(cfg, "horizon");
}

TEST(SimConfigValidationTest, RejectsNonPositiveLoSpeed) {
  SimConfig cfg;
  cfg.lo_speed = 0.0;
  expect_rejected(cfg, "lo_speed");
}

TEST(SimConfigValidationTest, RejectsNaNLoSpeed) {
  SimConfig cfg;
  cfg.lo_speed = kNaN;
  expect_rejected(cfg, "lo_speed");
}

TEST(SimConfigValidationTest, RejectsNonPositiveHiSpeed) {
  SimConfig cfg;
  cfg.hi_speed = -1.0;
  expect_rejected(cfg, "hi_speed");
}

TEST(SimConfigValidationTest, RejectsNegativeSpeedChangeLatency) {
  SimConfig cfg;
  cfg.speed_change_latency = -0.5;
  expect_rejected(cfg, "speed_change_latency");
}

TEST(SimConfigValidationTest, RejectsNaNSpeedChangeLatency) {
  SimConfig cfg;
  cfg.speed_change_latency = kNaN;
  expect_rejected(cfg, "speed_change_latency");
}

TEST(SimConfigValidationTest, RejectsNegativeReleaseJitter) {
  SimConfig cfg;
  cfg.release_jitter = -0.1;
  expect_rejected(cfg, "release_jitter");
}

TEST(SimConfigValidationTest, RejectsNaNReleaseJitter) {
  SimConfig cfg;
  cfg.release_jitter = kNaN;
  expect_rejected(cfg, "release_jitter");
}

TEST(SimConfigValidationTest, RejectsNegativeOverrunSeparation) {
  SimConfig cfg;
  cfg.min_overrun_separation = -1.0;
  expect_rejected(cfg, "min_overrun_separation");
}

TEST(SimConfigValidationTest, RejectsNegativeOffsetSpread) {
  SimConfig cfg;
  cfg.initial_offset_spread = -0.2;
  expect_rejected(cfg, "initial_offset_spread");
}

TEST(SimConfigValidationTest, RejectsNegativeMaxBoostDuration) {
  SimConfig cfg;
  cfg.max_boost_duration = -5.0;
  expect_rejected(cfg, "max_boost_duration");
}

TEST(SimConfigValidationTest, RejectsOverrunProbabilityAboveOne) {
  SimConfig cfg;
  cfg.demand.overrun_probability = 1.5;
  expect_rejected(cfg, "overrun_probability");
}

TEST(SimConfigValidationTest, RejectsNegativeOverrunProbability) {
  SimConfig cfg;
  cfg.demand.overrun_probability = -0.1;
  expect_rejected(cfg, "overrun_probability");
}

TEST(SimConfigValidationTest, RejectsNaNBaseFraction) {
  SimConfig cfg;
  cfg.demand.base_fraction_min = kNaN;
  expect_rejected(cfg, "base fractions");
}

TEST(SimConfigValidationTest, RejectsNegativeBaseFraction) {
  SimConfig cfg;
  cfg.demand.base_fraction_max = -1.0;
  expect_rejected(cfg, "base fractions");
}

TEST(SimConfigValidationTest, RejectsScriptSizeMismatch) {
  SimConfig cfg;
  cfg.scripted_arrivals = {{{0.0, 1.0}}};  // one script for two tasks
  expect_rejected(cfg, "scripted_arrivals");
}

TEST(SimConfigValidationTest, RejectsScriptWithNegativeRelease) {
  SimConfig cfg;
  cfg.scripted_arrivals = {{{-1.0, 1.0}}, {}};
  expect_rejected(cfg, "scripted release");
}

TEST(SimConfigValidationTest, RejectsScriptWithNonPositiveDemand) {
  SimConfig cfg;
  cfg.scripted_arrivals = {{{0.0, 0.0}}, {}};
  expect_rejected(cfg, "scripted demand");
}

TEST(SimConfigValidationTest, RejectsScriptWithDecreasingReleases) {
  SimConfig cfg;
  cfg.scripted_arrivals = {{{10.0, 1.0}, {5.0, 1.0}}, {}};
  expect_rejected(cfg, "non-decreasing");
}

TEST(SimConfigValidationTest, RejectsInvalidFaultPlan) {
  SimConfig cfg;
  cfg.faults.random.p_deny = 2.0;  // probability out of range
  const TaskSet set = two_tasks();
  Simulator simulator;
  EXPECT_FALSE(simulator.run(set, cfg).is_ok());
}

TEST(SimLimitsValidationTest, RejectsZeroEventBudget) {
  SimConfig cfg;
  SimLimits limits;
  limits.max_events = 0;
  Simulator simulator;
  const Expected<SimReport> report = simulator.run(two_tasks(), cfg, limits);
  ASSERT_FALSE(report.is_ok());
  EXPECT_NE(report.error_message().find("max_events"), std::string::npos);
}

TEST(SimLimitsValidationTest, RejectsZeroJobBudget) {
  SimConfig cfg;
  SimLimits limits;
  limits.max_jobs = 0;
  Simulator simulator;
  const Expected<SimReport> report = simulator.run(two_tasks(), cfg, limits);
  ASSERT_FALSE(report.is_ok());
  EXPECT_NE(report.error_message().find("max_jobs"), std::string::npos);
}

TEST(SimLegacyWrapperTest, TrySimulateReturnsStatusNotThrow) {
  SimConfig cfg;
  cfg.horizon = kNaN;
  const Expected<SimMetrics> result = try_simulate(two_tasks(), cfg);
  EXPECT_FALSE(result.is_ok());
}

TEST(SimLegacyWrapperTest, SimulateThrowsTypedMessageOnInvalidConfig) {
  SimConfig cfg;
  cfg.horizon = -1.0;
  EXPECT_THROW((void)simulate(two_tasks(), cfg), std::invalid_argument);
}

}  // namespace
}  // namespace rbs::sim

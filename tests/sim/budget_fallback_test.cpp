// Tests for the turbo-budget runtime fallback: when a HI-mode episode
// exceeds the allowed boost duration, the simulator drops to nominal speed
// and terminates the LO tasks (Section IV remark).
#include <gtest/gtest.h>

#include "core/budget.hpp"
#include "core/speedup.hpp"
#include "sim/simulator.hpp"

namespace rbs::sim {
namespace {

// A HI task that overruns every period plus a LO task (s_min = 4/3): at 1.5x
// each episode lasts (8-2)/1.5 = 4 plus LO interference, comfortably over a
// boost budget of 2.
TaskSet long_episode_set() {
  return TaskSet({McTask::hi("h", 2, 8, 4, 10, 10), McTask::lo("l", 1, 5, 5)});
}

SimConfig overrunning(double horizon) {
  SimConfig cfg;
  cfg.horizon = horizon;
  cfg.demand.overrun_probability = 1.0;
  cfg.hi_speed = 1.5;
  cfg.record_trace = true;
  return cfg;
}

TEST(BudgetFallbackTest, DisabledByDefault) {
  const SimResult r = simulate(long_episode_set(), overrunning(200.0));
  EXPECT_EQ(r.budget_fallbacks, 0u);
}

TEST(BudgetFallbackTest, TriggersAfterBudget) {
  SimConfig cfg = overrunning(200.0);
  cfg.max_boost_duration = 2.0;
  const SimResult r = simulate(long_episode_set(), cfg);
  EXPECT_GT(r.budget_fallbacks, 0u);
  // Fallback events sit exactly budget-after their switch events.
  double switch_time = -1.0;
  for (const TraceEvent& e : r.trace.events) {
    if (e.kind == TraceEvent::Kind::kModeSwitchHi) switch_time = e.time;
    if (e.kind == TraceEvent::Kind::kBudgetFallback) {
      ASSERT_GE(switch_time, 0.0);
      EXPECT_NEAR(e.time - switch_time, 2.0, 1e-6);
    }
  }
}

TEST(BudgetFallbackTest, SpeedReturnsToNominalDuringFallback) {
  SimConfig cfg = overrunning(60.0);
  cfg.max_boost_duration = 2.0;
  const SimResult r = simulate(long_episode_set(), cfg);
  double fallback_at = -1.0, reset_at = -1.0;
  for (const TraceEvent& e : r.trace.events) {
    if (e.kind == TraceEvent::Kind::kBudgetFallback && fallback_at < 0) fallback_at = e.time;
    if (e.kind == TraceEvent::Kind::kReset && fallback_at >= 0 && reset_at < 0)
      reset_at = e.time;
  }
  ASSERT_GE(fallback_at, 0.0);
  ASSERT_GE(reset_at, 0.0);
  for (const TraceSegment& s : r.trace.segments)
    if (s.start >= fallback_at && s.end <= reset_at && s.task_index >= 0)
      EXPECT_DOUBLE_EQ(s.speed, 1.0) << "boosted execution after fallback at " << s.start;
}

TEST(BudgetFallbackTest, LoJobsAbandonedAndReleasesSuppressed) {
  SimConfig cfg = overrunning(200.0);
  cfg.max_boost_duration = 1.0;
  const SimResult r = simulate(long_episode_set(), cfg);
  EXPECT_GT(r.jobs_abandoned, 0u);
  // No LO release between a fallback and the following reset.
  double fallback_since = -1.0;
  for (const TraceEvent& e : r.trace.events) {
    if (e.kind == TraceEvent::Kind::kBudgetFallback) fallback_since = e.time;
    if (e.kind == TraceEvent::Kind::kReset) fallback_since = -1.0;
    if (e.kind == TraceEvent::Kind::kRelease && e.task_index == 1)
      EXPECT_LT(fallback_since, 0.0) << "LO release during fallback at " << e.time;
  }
}

TEST(BudgetFallbackTest, HiDeadlinesSafeWhenFallbackIsAdmissible) {
  // check_turbo_envelope certifies the fallback offline; the executed
  // schedule must then be miss-free even with an aggressively short budget.
  const TaskSet set = long_episode_set();
  TurboEnvelope env;
  env.max_speedup = 1.5;
  env.max_boost_ticks = 2.0;
  const TurboReport report = check_turbo_envelope(set, env);
  ASSERT_TRUE(report.fallback_safe);
  ASSERT_TRUE(report.admissible);

  SimConfig cfg = overrunning(5000.0);
  cfg.max_boost_duration = 2.0;
  const SimResult r = simulate(set, cfg);
  EXPECT_GT(r.budget_fallbacks, 0u);
  EXPECT_FALSE(r.deadline_missed());
}

TEST(BudgetFallbackTest, ResetClearsFallbackAndServiceResumes) {
  SimConfig cfg = overrunning(400.0);
  cfg.max_boost_duration = 1.0;
  const SimResult r = simulate(long_episode_set(), cfg);
  // After each reset the LO task must release again in LO mode.
  bool saw_lo_release_after_reset = false;
  double last_reset = -1.0;
  for (const TraceEvent& e : r.trace.events) {
    if (e.kind == TraceEvent::Kind::kReset) last_reset = e.time;
    if (e.kind == TraceEvent::Kind::kRelease && e.task_index == 1 && last_reset >= 0)
      saw_lo_release_after_reset = true;
  }
  EXPECT_TRUE(saw_lo_release_after_reset);
  EXPECT_GT(r.hi_dwell_times.size(), 0u);
}

TEST(BudgetFallbackTest, GenerousBudgetNeverTriggers) {
  SimConfig cfg = overrunning(200.0);
  cfg.max_boost_duration = 1000.0;
  const SimResult r = simulate(long_episode_set(), cfg);
  EXPECT_EQ(r.budget_fallbacks, 0u);
  EXPECT_GT(r.mode_switches, 0u);
}

}  // namespace
}  // namespace rbs::sim

// Additional simulator coverage: non-unit nominal speed, idle behaviour,
// per-episode accounting, and work-conservation invariants.
#include <gtest/gtest.h>

#include <cmath>

#include "gen/paper_examples.hpp"
#include "sim/simulator.hpp"

namespace rbs::sim {
namespace {

TEST(LoSpeedTest, NominalSpeedScalesLoMode) {
  // Double nominal speed halves every LO-mode response time.
  const TaskSet set({McTask::lo("l", 6, 20, 20)});
  SimConfig slow;
  slow.horizon = 100.0;
  SimConfig fast = slow;
  fast.lo_speed = 2.0;
  fast.hi_speed = 2.0;
  const SimResult a = simulate(set, slow);
  const SimResult b = simulate(set, fast);
  EXPECT_NEAR(a.task_stats[0].max_response, 6.0, 1e-6);
  EXPECT_NEAR(b.task_stats[0].max_response, 3.0, 1e-6);
}

TEST(LoSpeedTest, UnderclockedLoModeCanMiss) {
  // At half speed the same task overruns its deadline window.
  const TaskSet set({McTask::lo("l", 12, 20, 20)});
  SimConfig cfg;
  cfg.horizon = 100.0;
  cfg.lo_speed = 0.5;
  cfg.hi_speed = 0.5;
  const SimResult r = simulate(set, cfg);
  EXPECT_TRUE(r.deadline_missed());
}

TEST(IdleTest, NoResetEventsInPureLoMode) {
  SimConfig cfg;
  cfg.horizon = 1000.0;
  cfg.record_trace = true;
  const SimResult r = simulate(table1_base(), cfg);  // no overruns
  for (const TraceEvent& e : r.trace.events) {
    EXPECT_NE(e.kind, TraceEvent::Kind::kReset);
    EXPECT_NE(e.kind, TraceEvent::Kind::kModeSwitchHi);
  }
  EXPECT_TRUE(r.hi_dwell_times.empty());
}

TEST(IdleTest, IdleSegmentsRecordedWithoutTask) {
  const TaskSet set({McTask::lo("l", 1, 10, 10)});
  SimConfig cfg;
  cfg.horizon = 20.0;
  cfg.record_trace = true;
  const SimResult r = simulate(set, cfg);
  bool saw_idle = false;
  for (const TraceSegment& s : r.trace.segments) saw_idle |= s.task_index < 0;
  EXPECT_TRUE(saw_idle);
}

TEST(AccountingTest, EveryEpisodeHasOneDwell) {
  SimConfig cfg;
  cfg.horizon = 20000.0;
  cfg.hi_speed = 2.0;
  cfg.demand.overrun_probability = 0.5;
  cfg.seed = 17;
  const SimResult r = simulate(table1_base(), cfg);
  EXPECT_EQ(r.hi_dwell_times.size() + (r.ended_in_hi_mode ? 1 : 0), r.mode_switches);
}

TEST(AccountingTest, BusyTimeNeverExceedsHorizon) {
  SimConfig cfg;
  cfg.horizon = 5000.0;
  cfg.hi_speed = 2.0;
  cfg.demand.overrun_probability = 1.0;
  const SimResult r = simulate(table1_base(), cfg);
  EXPECT_LE(r.busy_time, cfg.horizon + 1e-6);
  EXPECT_GT(r.busy_time, 0.0);
}

TEST(AccountingTest, CompletedPlusPendingEqualsReleased) {
  SimConfig cfg;
  cfg.horizon = 5000.0;
  cfg.hi_speed = 2.0;
  cfg.demand.overrun_probability = 0.4;
  cfg.seed = 23;
  const SimResult r = simulate(table1_base(), cfg);
  // No abandonment configured: completions can lag releases only by the jobs
  // still in flight at the horizon (at most one per task here).
  EXPECT_LE(r.jobs_released - r.jobs_completed, 2u);
  EXPECT_EQ(r.jobs_abandoned, 0u);
}

TEST(AccountingTest, WorkConservationAgainstTrace) {
  // Executed work (integral of speed over busy segments) must equal the
  // total demand of completed jobs plus at most the in-flight remainder.
  SimConfig cfg;
  cfg.horizon = 2000.0;
  cfg.hi_speed = 2.0;
  cfg.demand.overrun_probability = 1.0;
  cfg.record_trace = true;
  const SimResult r = simulate(table1_base(), cfg);
  double executed = 0.0;
  for (const TraceSegment& s : r.trace.segments)
    if (s.task_index >= 0) executed += (s.end - s.start) * s.speed;
  // Every tau1 job demands 5, every tau2 job 2 (p = 1, full overrun).
  const double completed_demand = 5.0 * static_cast<double>(r.task_stats[0].completed) +
                                  2.0 * static_cast<double>(r.task_stats[1].completed);
  EXPECT_GE(executed + 1e-6, completed_demand);
  EXPECT_LE(executed, completed_demand + 5.0 + 2.0 + 1e-6);
}

TEST(AccountingTest, ResponseNeverBelowDemandOverSpeed) {
  SimConfig cfg;
  cfg.horizon = 5000.0;
  cfg.hi_speed = 2.0;
  cfg.demand.overrun_probability = 1.0;
  const SimResult r = simulate(table1_base(), cfg);
  // tau1 always demands 5; even at full boost it needs >= 5/2 time units.
  EXPECT_GE(r.task_stats[0].max_response, 5.0 / 2.0 - 1e-6);
}

}  // namespace
}  // namespace rbs::sim

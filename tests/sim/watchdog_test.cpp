// Regression suite for the trace watchdog (sim/watchdog.hpp): fault-free
// runs certify clean, boost-denied misses are licensed exactly when the
// degraded-guarantee analysis says so, and hand-scripted invariant breaks
// are caught as structured violations.
#include "sim/watchdog.hpp"

#include <gtest/gtest.h>

#include "core/reset.hpp"
#include "core/speedup.hpp"
#include "gen/paper_examples.hpp"
#include "sim/simulator.hpp"

namespace rbs::sim {
namespace {

// HI-mode utilization 6/6 + 2/4 = 1.5 > 1: sustained overruns overload the
// processor at unit speed, so a denied boost guarantees deadline misses.
// LO mode (C(LO)/D(LO) slack everywhere) stays schedulable at unit speed.
TaskSet overload_set() {
  return TaskSet({
      McTask::hi("A", /*c_lo=*/2, /*c_hi=*/6, /*lo_deadline=*/4, /*deadline=*/6, /*period=*/6),
      McTask::hi("B", /*c_lo=*/1, /*c_hi=*/2, /*lo_deadline=*/2, /*deadline=*/4, /*period=*/4),
  });
}

TEST(WatchdogCleanRunTest, NoFaultAtExactSMinHasZeroViolations) {
  const TaskSet set = table1_base();
  const double s_min = min_speedup_value(set);  // 4/3
  SimConfig cfg;
  cfg.horizon = 5000.0;
  cfg.hi_speed = s_min;
  cfg.demand.overrun_probability = 1.0;
  cfg.record_trace = true;

  const SimResult result = simulate(set, cfg);
  ASSERT_GT(result.mode_switches, 0u);
  ASSERT_TRUE(result.misses.empty());

  WatchdogOptions opts;
  opts.delta_r_bound = resetting_time_value(set, s_min);
  const WatchdogReport report = check_trace(set, cfg, result, opts);
  EXPECT_TRUE(report.ok()) << (report.violations.empty() ? "" : report.violations[0].detail);
  EXPECT_GT(report.events_checked, 0u);
  EXPECT_GT(report.segments_checked, 0u);
  EXPECT_GT(report.dwells_checked, 0u);
}

TEST(WatchdogCleanRunTest, CleanRunWithJitterAndOffsets) {
  const TaskSet set = table1_base();
  SimConfig cfg;
  cfg.horizon = 5000.0;
  cfg.hi_speed = 2.0;
  cfg.demand.overrun_probability = 0.4;
  cfg.release_jitter = 0.25;
  cfg.initial_offset_spread = 0.5;
  cfg.record_trace = true;
  cfg.seed = 11;

  const SimResult result = simulate(set, cfg);
  WatchdogOptions opts;
  opts.delta_r_bound = resetting_time_value(set, 2.0);  // Delta_R(2) = 6
  EXPECT_TRUE(check_trace(set, cfg, result, opts).ok());
}

TEST(WatchdogLicenseTest, BoostDeniedMissesAreLicensed) {
  const TaskSet set = overload_set();
  const double s_min = min_speedup_value(set);
  ASSERT_GT(s_min, 1.0);

  SimConfig cfg;
  cfg.horizon = 600.0;
  cfg.hi_speed = s_min * 1.1;
  cfg.demand.overrun_probability = 1.0;
  cfg.record_trace = true;
  cfg.faults.episodes.push_back({});
  cfg.faults.episodes.back().deny_boost = true;
  cfg.faults.recycle = true;

  const SimResult result = simulate(set, cfg);
  ASSERT_GT(result.faults_injected, 0u);
  ASSERT_FALSE(result.misses.empty());

  // Without a license every miss is a violation ...
  const WatchdogReport unlicensed = check_trace(set, cfg, result, {});
  ASSERT_FALSE(unlicensed.ok());
  std::size_t miss_violations = 0;
  for (const Violation& v : unlicensed.violations) {
    EXPECT_EQ(v.kind, Violation::Kind::kUnlicensedMiss) << v.detail;
    ++miss_violations;
  }
  EXPECT_EQ(miss_violations, result.misses.size());

  // ... and with the degraded-guarantee license (achieved speed 1 < s_min)
  // the same trace certifies clean.
  WatchdogOptions licensed;
  licensed.license.hi_mode_misses = !hi_mode_schedulable(set, cfg.lo_speed);
  ASSERT_TRUE(licensed.license.hi_mode_misses);
  EXPECT_TRUE(check_trace(set, cfg, result, licensed).ok());
}

TEST(WatchdogLicenseTest, PerTaskLicenseCoversOnlyThatTask) {
  const TaskSet set = overload_set();
  SimConfig cfg;
  cfg.horizon = 600.0;
  cfg.hi_speed = 2.0;
  cfg.demand.overrun_probability = 1.0;
  cfg.record_trace = true;
  cfg.faults.episodes.push_back({});
  cfg.faults.episodes.back().deny_boost = true;
  cfg.faults.recycle = true;

  const SimResult result = simulate(set, cfg);
  ASSERT_FALSE(result.misses.empty());
  bool task0_missed = false, task1_missed = false;
  for (const DeadlineMiss& m : result.misses) {
    task0_missed |= m.task_index == 0;
    task1_missed |= m.task_index == 1;
  }
  if (!task0_missed || !task1_missed) GTEST_SKIP() << "need misses from both tasks";

  WatchdogOptions opts;
  opts.license.tasks = {0};
  const WatchdogReport report = check_trace(set, cfg, result, opts);
  ASSERT_FALSE(report.ok());
  for (const Violation& v : report.violations) EXPECT_EQ(v.task_index, 1);
}

// ---- hand-scripted traces: each invariant break must be caught -----------

SimConfig traced_config() {
  SimConfig cfg;
  cfg.record_trace = true;
  return cfg;
}

TEST(WatchdogScriptedTest, ResetWhileJobsPendingIsFlagged) {
  const TaskSet set = table1_base();
  SimResult result;
  result.trace.events = {
      {0.0, TraceEvent::Kind::kRelease, 0, 1},
      {1.0, TraceEvent::Kind::kModeSwitchHi, -1, 0},
      {2.0, TraceEvent::Kind::kReset, -1, 0},  // job 1 never completed
      {3.0, TraceEvent::Kind::kCompletion, 0, 1},
  };
  const WatchdogReport report = check_trace(set, traced_config(), result, {});
  ASSERT_EQ(report.violations.size(), 1u);
  EXPECT_EQ(report.violations[0].kind, Violation::Kind::kResetNotIdle);
  EXPECT_DOUBLE_EQ(report.violations[0].time, 2.0);
}

TEST(WatchdogScriptedTest, DwellBeyondDeltaRIsFlagged) {
  const TaskSet set = table1_base();
  SimResult result;
  result.trace.events = {
      {1.0, TraceEvent::Kind::kModeSwitchHi, -1, 0},
      {10.0, TraceEvent::Kind::kReset, -1, 0},  // dwell 9 > bound 5
  };
  WatchdogOptions opts;
  opts.delta_r_bound = 5.0;
  const WatchdogReport report = check_trace(set, traced_config(), result, opts);
  ASSERT_EQ(report.violations.size(), 1u);
  EXPECT_EQ(report.violations[0].kind, Violation::Kind::kDwellExceeded);
  EXPECT_EQ(report.dwells_checked, 1u);
}

TEST(WatchdogScriptedTest, OffProtocolSpeedIsFlagged) {
  const TaskSet set = table1_base();
  SimResult result;
  result.trace.segments = {{0.0, 1.0, 0, 1, /*speed=*/3.7, Mode::LO}};
  const WatchdogReport report = check_trace(set, traced_config(), result, {});
  ASSERT_EQ(report.violations.size(), 1u);
  EXPECT_EQ(report.violations[0].kind, Violation::Kind::kSpeedOutOfProtocol);
}

TEST(WatchdogScriptedTest, StructurallyBrokenTracesAreFlagged) {
  const TaskSet set = table1_base();

  SimResult unordered;
  unordered.trace.events = {
      {5.0, TraceEvent::Kind::kRelease, 0, 1},
      {1.0, TraceEvent::Kind::kCompletion, 0, 1},  // time runs backwards
  };
  WatchdogReport report = check_trace(set, traced_config(), unordered, {});
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.violations[0].kind, Violation::Kind::kMalformedTrace);

  SimResult orphan;
  orphan.trace.events = {{1.0, TraceEvent::Kind::kCompletion, 0, 1}};
  report = check_trace(set, traced_config(), orphan, {});
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.violations[0].kind, Violation::Kind::kMalformedTrace);

  SimResult double_switch;
  double_switch.trace.events = {
      {1.0, TraceEvent::Kind::kModeSwitchHi, -1, 0},
      {2.0, TraceEvent::Kind::kModeSwitchHi, -1, 0},
  };
  report = check_trace(set, traced_config(), double_switch, {});
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.violations[0].kind, Violation::Kind::kMalformedTrace);

  // Summary/trace miss-count disagreement.
  SimResult mismatch;
  mismatch.misses.push_back({0, 1, 4.0, Mode::LO});
  report = check_trace(set, traced_config(), mismatch, {});
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.violations[0].kind, Violation::Kind::kMalformedTrace);
}

TEST(WatchdogScriptedTest, MissingTraceIsReportedNotAsserted) {
  const TaskSet set = table1_base();
  SimConfig cfg;  // record_trace = false
  const WatchdogReport report = check_trace(set, cfg, SimResult{}, {});
  ASSERT_EQ(report.violations.size(), 1u);
  EXPECT_EQ(report.violations[0].kind, Violation::Kind::kMalformedTrace);
}

TEST(WatchdogScriptedTest, InjectedEpisodeSpeedsAreAllowed) {
  const TaskSet set = table1_base();
  SimConfig cfg;
  cfg.horizon = 300.0;
  cfg.hi_speed = 2.0;
  cfg.demand.overrun_probability = 1.0;
  cfg.record_trace = true;
  cfg.faults.episodes.push_back({});
  cfg.faults.episodes.back().achieved_speed = 1.5;
  cfg.faults.recycle = true;

  const SimResult result = simulate(set, cfg);
  ASSERT_GT(result.faults_injected, 0u);
  WatchdogOptions opts;
  opts.license.hi_mode_misses = !hi_mode_schedulable(set, 1.5);
  const WatchdogReport report = check_trace(set, cfg, result, opts);
  for (const Violation& v : report.violations)
    EXPECT_NE(v.kind, Violation::Kind::kSpeedOutOfProtocol) << v.detail;
}

}  // namespace
}  // namespace rbs::sim

// Shared differential-suite fixtures: generated task sets, the bit-identity
// comparator over SimMetrics, and the protocol feature-matrix of SimConfigs.
//
// Factored out of differential_test.cpp so the multicore suite
// (tests/multi/multicore_sim_test.cpp) can assert its own contract -- a
// single-core MulticoreSim is bit-identical to the uniprocessor kernel -- on
// exactly the same scenarios the kernel itself is certified on.
#pragma once

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "core/tuning.hpp"
#include "gen/taskgen.hpp"
#include "sim/metrics.hpp"
#include "sim/config.hpp"

namespace rbs::sim::testkit {

inline TaskSet make_set(std::uint64_t seed, double u_bound) {
  Rng rng(seed);
  GenParams params;
  params.u_bound = u_bound;
  for (int attempt = 0; attempt < 100; ++attempt) {
    const auto skeleton = generate_task_set(params, rng);
    if (!skeleton) continue;
    const MinXResult mx = min_x_for_lo(*skeleton);
    if (!mx.feasible) continue;
    return skeleton->materialize(mx.x, 2.0);
  }
  ADD_FAILURE() << "could not generate task set for seed " << seed;
  return TaskSet({McTask::lo("fallback", 1, 10, 10)});
}

/// Every field of both metrics compared with ==, no tolerances: the contract
/// between the kernels is bit-identity, not statistical similarity.
inline void expect_identical(const SimMetrics& a, const SimMetrics& b,
                             const std::string& label) {
  SCOPED_TRACE(label);
  EXPECT_EQ(a.jobs_released, b.jobs_released);
  EXPECT_EQ(a.jobs_completed, b.jobs_completed);
  EXPECT_EQ(a.jobs_abandoned, b.jobs_abandoned);
  EXPECT_EQ(a.preemptions, b.preemptions);
  EXPECT_EQ(a.mode_switches, b.mode_switches);
  EXPECT_EQ(a.budget_fallbacks, b.budget_fallbacks);
  EXPECT_EQ(a.faults_injected, b.faults_injected);
  EXPECT_EQ(a.throttle_downs, b.throttle_downs);
  EXPECT_EQ(a.undetected_overruns, b.undetected_overruns);
  EXPECT_EQ(a.jobs_lost_to_fault, b.jobs_lost_to_fault);
  EXPECT_EQ(a.ended_in_hi_mode, b.ended_in_hi_mode);
  EXPECT_EQ(a.busy_time, b.busy_time);  // bit-exact, not NEAR
  EXPECT_EQ(a.horizon, b.horizon);

  ASSERT_EQ(a.misses.size(), b.misses.size());
  for (std::size_t i = 0; i < a.misses.size(); ++i) {
    EXPECT_EQ(a.misses[i].task_index, b.misses[i].task_index) << "miss " << i;
    EXPECT_EQ(a.misses[i].job_id, b.misses[i].job_id) << "miss " << i;
    EXPECT_EQ(a.misses[i].deadline, b.misses[i].deadline) << "miss " << i;
    EXPECT_EQ(a.misses[i].mode, b.misses[i].mode) << "miss " << i;
  }

  ASSERT_EQ(a.task_stats.size(), b.task_stats.size());
  for (std::size_t i = 0; i < a.task_stats.size(); ++i) {
    EXPECT_EQ(a.task_stats[i].released, b.task_stats[i].released) << "task " << i;
    EXPECT_EQ(a.task_stats[i].completed, b.task_stats[i].completed) << "task " << i;
    EXPECT_EQ(a.task_stats[i].misses, b.task_stats[i].misses) << "task " << i;
    EXPECT_EQ(a.task_stats[i].max_response, b.task_stats[i].max_response) << "task " << i;
    EXPECT_EQ(a.task_stats[i].total_response, b.task_stats[i].total_response) << "task " << i;
  }

  ASSERT_EQ(a.hi_dwell_times.size(), b.hi_dwell_times.size());
  for (std::size_t i = 0; i < a.hi_dwell_times.size(); ++i)
    EXPECT_EQ(a.hi_dwell_times[i], b.hi_dwell_times[i]) << "dwell " << i;

  ASSERT_EQ(a.trace.segments.size(), b.trace.segments.size());
  for (std::size_t i = 0; i < a.trace.segments.size(); ++i) {
    const TraceSegment& sa = a.trace.segments[i];
    const TraceSegment& sb = b.trace.segments[i];
    EXPECT_EQ(sa.start, sb.start) << "segment " << i;
    EXPECT_EQ(sa.end, sb.end) << "segment " << i;
    EXPECT_EQ(sa.task_index, sb.task_index) << "segment " << i;
    EXPECT_EQ(sa.job_id, sb.job_id) << "segment " << i;
    EXPECT_EQ(sa.speed, sb.speed) << "segment " << i;
    EXPECT_EQ(sa.mode, sb.mode) << "segment " << i;
  }
  ASSERT_EQ(a.trace.events.size(), b.trace.events.size());
  for (std::size_t i = 0; i < a.trace.events.size(); ++i) {
    const TraceEvent& ea = a.trace.events[i];
    const TraceEvent& eb = b.trace.events[i];
    EXPECT_EQ(ea.time, eb.time) << "event " << i;
    EXPECT_EQ(ea.kind, eb.kind) << "event " << i << " (" << to_string(ea.kind) << " vs "
                                << to_string(eb.kind) << ")";
    EXPECT_EQ(ea.task_index, eb.task_index) << "event " << i;
    EXPECT_EQ(ea.job_id, eb.job_id) << "event " << i;
  }
  ASSERT_EQ(a.trace.jobs.size(), b.trace.jobs.size());
  for (std::size_t i = 0; i < a.trace.jobs.size(); ++i) {
    EXPECT_EQ(a.trace.jobs[i].task_index, b.trace.jobs[i].task_index) << "job " << i;
    EXPECT_EQ(a.trace.jobs[i].job_id, b.trace.jobs[i].job_id) << "job " << i;
    EXPECT_EQ(a.trace.jobs[i].release, b.trace.jobs[i].release) << "job " << i;
    EXPECT_EQ(a.trace.jobs[i].demand, b.trace.jobs[i].demand) << "job " << i;
  }
}

/// The feature matrix: each entry turns on one protocol dimension (or an
/// adversarial combination) on top of a common overloadable base.
inline std::vector<std::pair<std::string, SimConfig>> config_corpus() {
  std::vector<std::pair<std::string, SimConfig>> corpus;
  SimConfig base;
  base.horizon = 20000.0;
  base.hi_speed = 2.0;
  base.demand.overrun_probability = 0.3;
  base.record_trace = true;

  corpus.emplace_back("periodic-overruns", base);

  {
    SimConfig cfg = base;
    cfg.release_jitter = 0.2;
    cfg.initial_offset_spread = 0.5;
    corpus.emplace_back("jitter+offsets", cfg);
  }
  {
    SimConfig cfg = base;
    cfg.min_overrun_separation = 500.0;
    cfg.demand.overrun_shape = DemandModel::OverrunShape::kUniform;
    corpus.emplace_back("separation+uniform-overruns", cfg);
  }
  {
    SimConfig cfg = base;
    cfg.demand.base_fraction_min = 0.4;
    cfg.demand.base_fraction_max = 1.2;  // eligible-without-overrun draws
    corpus.emplace_back("variable-demand", cfg);
  }
  {
    SimConfig cfg = base;
    cfg.speed_change_latency = 3.0;
    cfg.discard_dropped_carryover = true;
    corpus.emplace_back("dvfs-latency+discard", cfg);
  }
  {
    SimConfig cfg = base;
    cfg.max_boost_duration = 40.0;  // force turbo-budget fallbacks
    corpus.emplace_back("turbo-budget", cfg);
  }
  {
    SimConfig cfg = base;
    cfg.faults.detection_period = 50.0;  // coarse polled budget monitor
    // Uniform overruns give demands just past C(LO): some jobs finish
    // before the next poll, exercising the undetected-overrun path.
    cfg.demand.overrun_shape = DemandModel::OverrunShape::kUniform;
    corpus.emplace_back("polled-detection", cfg);
  }
  {
    SimConfig cfg = base;
    cfg.faults.random.p_deny = 0.2;
    cfg.faults.random.p_partial = 0.3;
    cfg.faults.random.partial_min = 0.3;
    cfg.faults.random.partial_max = 0.9;
    cfg.faults.random.p_late = 0.3;
    cfg.faults.random.late_min = 1.0;
    cfg.faults.random.late_max = 10.0;
    cfg.faults.random.p_throttle = 0.2;
    cfg.faults.random.throttle_after_min = 5.0;
    cfg.faults.random.throttle_after_max = 30.0;
    cfg.speed_change_latency = 1.0;
    corpus.emplace_back("random-faults", cfg);
  }
  {
    SimConfig cfg = base;
    cfg.lo_speed = 1.5;
    cfg.hi_speed = 1.2;  // slowdown systems (paper's Example 1, s_min < 1)
    corpus.emplace_back("hi-slower-than-lo", cfg);
  }
  {
    SimConfig cfg = base;
    cfg.horizon = 5000.0;
    cfg.demand.overrun_probability = 0.9;  // overload: frequent switches, misses
    cfg.release_jitter = 0.05;
    cfg.max_boost_duration = 25.0;
    cfg.faults.detection_period = 4.0;
    cfg.faults.random.p_deny = 0.5;
    corpus.emplace_back("adversarial-combination", cfg);
  }
  return corpus;
}

}  // namespace rbs::sim::testkit

// Unit tests for the discrete-event simulator's mechanics.
#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "gen/paper_examples.hpp"

namespace rbs::sim {
namespace {

SimConfig quiet(double horizon) {
  SimConfig cfg;
  cfg.horizon = horizon;
  return cfg;
}

TEST(SimBasicsTest, SingleTaskPeriodicRunsToCompletion) {
  const TaskSet set({McTask::lo("l", 2, 10, 10)});
  const SimResult r = simulate(set, quiet(100.0));
  EXPECT_EQ(r.jobs_released, 10u);   // releases at 0,10,...,90
  EXPECT_EQ(r.jobs_completed, 10u);
  EXPECT_FALSE(r.deadline_missed());
  EXPECT_EQ(r.mode_switches, 0u);
  EXPECT_NEAR(r.busy_time, 20.0, 1e-6);
}

TEST(SimBasicsTest, SpeedScalesExecutionTime) {
  const TaskSet set({McTask::lo("l", 4, 10, 10)});
  SimConfig cfg = quiet(10.0);
  cfg.lo_speed = 2.0;
  cfg.record_trace = true;
  const SimResult r = simulate(set, cfg);
  ASSERT_FALSE(r.trace.segments.empty());
  // Demand 4 at speed 2 finishes after 2 time units.
  const TraceSegment& seg = r.trace.segments.front();
  EXPECT_EQ(seg.task_index, 0);
  EXPECT_NEAR(seg.end - seg.start, 2.0, 1e-6);
}

TEST(SimBasicsTest, EdfPicksEarliestDeadline) {
  // Task b has the shorter deadline and must run first despite its later
  // index... both released at t=0.
  const TaskSet set({McTask::lo("a", 3, 20, 20), McTask::lo("b", 2, 5, 20)});
  SimConfig cfg = quiet(20.0);
  cfg.record_trace = true;
  const SimResult r = simulate(set, cfg);
  ASSERT_GE(r.trace.segments.size(), 2u);
  EXPECT_EQ(r.trace.segments[0].task_index, 1);  // "b"
  EXPECT_EQ(r.trace.segments[1].task_index, 0);  // then "a"
  EXPECT_FALSE(r.deadline_missed());
}

TEST(SimBasicsTest, PreemptionOnUrgentRelease) {
  // Long job (deadline 50) preempted by a short-deadline task released at 5.
  const TaskSet set({McTask::lo("long", 20, 50, 100),
                     McTask::lo("short", 2, 4, 100)});
  SimConfig cfg = quiet(100.0);
  cfg.initial_offset_spread = 0.0;
  // Shift "short"'s first release by giving it an offset: emulate by jitter
  // is awkward; instead release both at 0 -- short runs first, no preemption.
  const SimResult r0 = simulate(set, cfg);
  EXPECT_EQ(r0.preemptions, 0u);
  // With "short" having period 7 and deadline 4 it preempts "long" repeatedly.
  const TaskSet busy({McTask::lo("long", 20, 50, 100), McTask::lo("short", 2, 4, 7)});
  const SimResult r1 = simulate(busy, quiet(100.0));
  EXPECT_GT(r1.preemptions, 0u);
  EXPECT_FALSE(r1.deadline_missed());
}

TEST(SimBasicsTest, DeterministicForSameSeed) {
  SimConfig cfg = quiet(5000.0);
  cfg.demand.overrun_probability = 0.3;
  cfg.demand.base_fraction_min = 0.5;
  cfg.release_jitter = 0.2;
  cfg.hi_speed = 2.0;
  cfg.seed = 99;
  const TaskSet set = table1_base();
  const SimResult a = simulate(set, cfg);
  const SimResult b = simulate(set, cfg);
  EXPECT_EQ(a.jobs_released, b.jobs_released);
  EXPECT_EQ(a.mode_switches, b.mode_switches);
  EXPECT_EQ(a.preemptions, b.preemptions);
  EXPECT_DOUBLE_EQ(a.busy_time, b.busy_time);
  cfg.seed = 100;
  const SimResult c = simulate(set, cfg);
  EXPECT_NE(a.jobs_released + a.preemptions * 1000, c.jobs_released + c.preemptions * 1000);
}

TEST(SimOverrunTest, NoOverrunMeansNoModeSwitch) {
  SimConfig cfg = quiet(10000.0);
  cfg.demand.overrun_probability = 0.0;
  const SimResult r = simulate(table1_base(), cfg);
  EXPECT_EQ(r.mode_switches, 0u);
  EXPECT_FALSE(r.deadline_missed());
}

TEST(SimOverrunTest, BudgetTriggerFiresAtCLo) {
  // tau1 alone, always overrunning: the switch happens exactly when C(LO)=3
  // work units are done.
  const TaskSet set({McTask::hi("h", 3, 5, 4, 7, 7)});
  SimConfig cfg = quiet(7.0);
  cfg.demand.overrun_probability = 1.0;
  cfg.hi_speed = 2.0;
  cfg.record_trace = true;
  const SimResult r = simulate(set, cfg);
  ASSERT_EQ(r.mode_switches, 1u);
  double switch_time = -1.0;
  for (const TraceEvent& e : r.trace.events)
    if (e.kind == TraceEvent::Kind::kModeSwitchHi) switch_time = e.time;
  EXPECT_NEAR(switch_time, 3.0, 1e-6);
  EXPECT_FALSE(r.deadline_missed());
  // Residual 2 work units at speed 2: completion at 4, reset at 4.
  ASSERT_EQ(r.hi_dwell_times.size(), 1u);
  EXPECT_NEAR(r.hi_dwell_times[0], 1.0, 1e-6);
}

TEST(SimOverrunTest, UniformOverrunShapeStaysAboveBudget) {
  const TaskSet set({McTask::hi("h", 3, 9, 4, 10, 10)});
  SimConfig cfg = quiet(20000.0);
  cfg.demand.overrun_probability = 0.5;
  cfg.demand.overrun_shape = DemandModel::OverrunShape::kUniform;
  cfg.hi_speed = 3.0;
  const SimResult r = simulate(set, cfg);
  EXPECT_GT(r.mode_switches, 0u);
  EXPECT_FALSE(r.deadline_missed());
}

TEST(SimModeTest, TerminatedLoTaskStopsReleasingInHiMode) {
  // One always-overrunning HI task with a long HI-mode episode plus a
  // terminated LO task: while in HI mode the LO task must not release.
  const TaskSet set({McTask::hi("h", 2, 8, 4, 10, 10),
                     McTask::lo_terminated("l", 1, 5, 5)});
  SimConfig cfg = quiet(10000.0);
  cfg.demand.overrun_probability = 1.0;
  cfg.hi_speed = 1.2;
  cfg.record_trace = true;
  const SimResult r = simulate(set, cfg);
  EXPECT_GT(r.mode_switches, 0u);
  EXPECT_FALSE(r.deadline_missed());
  // Reconstruct mode intervals from events and check LO releases avoid them.
  double hi_since = -1.0;
  for (const TraceEvent& e : r.trace.events) {
    if (e.kind == TraceEvent::Kind::kModeSwitchHi) hi_since = e.time;
    if (e.kind == TraceEvent::Kind::kReset) hi_since = -1.0;
    if (e.kind == TraceEvent::Kind::kRelease && e.task_index == 1)
      EXPECT_LT(hi_since, 0.0) << "LO release at " << e.time << " during HI mode";
  }
}

TEST(SimModeTest, CarryOverOfDroppedTaskCompletesByDefault) {
  const TaskSet set({McTask::hi("h", 2, 8, 4, 10, 10),
                     McTask::lo_terminated("l", 6, 20, 20)});
  SimConfig cfg = quiet(40.0);
  cfg.demand.overrun_probability = 1.0;
  cfg.hi_speed = 2.0;
  const SimResult r = simulate(set, cfg);
  EXPECT_EQ(r.jobs_abandoned, 0u);
  EXPECT_EQ(r.jobs_completed, r.jobs_released);
}

TEST(SimModeTest, CarryOverOfDroppedTaskCanBeDiscarded) {
  const TaskSet set({McTask::hi("h", 2, 8, 4, 10, 10),
                     McTask::lo_terminated("l", 6, 20, 20)});
  SimConfig cfg = quiet(40.0);
  cfg.demand.overrun_probability = 1.0;
  cfg.hi_speed = 2.0;
  cfg.discard_dropped_carryover = true;
  const SimResult r = simulate(set, cfg);
  EXPECT_GT(r.jobs_abandoned, 0u);
}

TEST(SimModeTest, DegradedLoTaskSpacingInHiMode) {
  // LO task degraded to T(HI)=40: releases inside one HI episode must be >=
  // 40 apart. Keep the system in HI mode for a while via a heavy HI task.
  const TaskSet set({McTask::hi("h", 2, 9, 3, 10, 10),
                     McTask::lo("l", 2, 20, 20, 40, 40)});
  SimConfig cfg = quiet(20000.0);
  cfg.demand.overrun_probability = 1.0;
  cfg.hi_speed = 1.5;
  cfg.record_trace = true;
  const SimResult r = simulate(set, cfg);
  double hi_since = -1.0;
  double last_lo_release_in_hi = -1.0;
  for (const TraceEvent& e : r.trace.events) {
    if (e.kind == TraceEvent::Kind::kModeSwitchHi) {
      hi_since = e.time;
      last_lo_release_in_hi = -1.0;
    }
    if (e.kind == TraceEvent::Kind::kReset) hi_since = -1.0;
    if (e.kind == TraceEvent::Kind::kRelease && e.task_index == 1 && hi_since >= 0.0) {
      if (last_lo_release_in_hi >= 0.0)
        EXPECT_GE(e.time - last_lo_release_in_hi, 40.0 - 1e-6);
      last_lo_release_in_hi = e.time;
    }
  }
  EXPECT_FALSE(r.deadline_missed());
}

TEST(SimModeTest, ResetRestoresNominalSpeed) {
  const TaskSet set({McTask::hi("h", 3, 5, 4, 7, 7)});
  SimConfig cfg = quiet(14.0);
  cfg.demand.overrun_probability = 1.0;
  cfg.hi_speed = 2.5;
  cfg.record_trace = true;
  const SimResult r = simulate(set, cfg);
  ASSERT_GE(r.mode_switches, 1u);
  bool saw_lo_speed_after_reset = false;
  double reset_time = -1.0;
  for (const TraceEvent& e : r.trace.events)
    if (e.kind == TraceEvent::Kind::kReset && reset_time < 0) reset_time = e.time;
  ASSERT_GE(reset_time, 0.0);
  for (const TraceSegment& s : r.trace.segments)
    if (s.start >= reset_time && s.task_index >= 0) {
      EXPECT_DOUBLE_EQ(s.speed, 1.0);
      saw_lo_speed_after_reset = true;
      break;
    }
  EXPECT_TRUE(saw_lo_speed_after_reset);
}

TEST(SimMissTest, GuaranteedOverloadMisses) {
  // Two always-overrunning HI tasks: 8 work units due by t=4 at speed 1.
  const TaskSet set({McTask::hi("a", 2, 4, 2, 4, 4), McTask::hi("b", 2, 4, 2, 4, 4)});
  SimConfig cfg = quiet(50.0);
  cfg.demand.overrun_probability = 1.0;
  cfg.hi_speed = 1.0;
  const SimResult r = simulate(set, cfg);
  EXPECT_TRUE(r.deadline_missed());
  // At speedup 2 (= U_HI(HI)) the same scenario... needs slightly more: the
  // exact s_min for this set; use a comfortably larger speed.
  cfg.hi_speed = 3.0;
  const SimResult ok = simulate(set, cfg);
  EXPECT_FALSE(ok.deadline_missed());
}

TEST(SimMissTest, MissRecordsModeAndTask) {
  const TaskSet set({McTask::hi("a", 2, 4, 2, 4, 4), McTask::hi("b", 2, 4, 2, 4, 4)});
  SimConfig cfg = quiet(10.0);
  cfg.demand.overrun_probability = 1.0;
  const SimResult r = simulate(set, cfg);
  ASSERT_TRUE(r.deadline_missed());
  EXPECT_EQ(r.misses.front().mode, Mode::HI);
}

TEST(SimMissTest, VirtualDeadlineMissDetectedInLoMode) {
  // LO-mode infeasible by construction: two tasks with D=2, C=2.
  const TaskSet set({McTask::lo("a", 2, 2, 50), McTask::lo("b", 2, 2, 50)});
  const SimResult r = simulate(set, quiet(50.0));
  ASSERT_TRUE(r.deadline_missed());
  EXPECT_EQ(r.misses.front().mode, Mode::LO);
}

TEST(SimSporadicTest, JitterStretchesInterArrivals) {
  const TaskSet set({McTask::lo("l", 1, 10, 10)});
  SimConfig cfg = quiet(10000.0);
  cfg.release_jitter = 0.5;
  cfg.record_trace = true;
  const SimResult r = simulate(set, cfg);
  double last = -1.0;
  bool saw_stretch = false;
  for (const TraceEvent& e : r.trace.events) {
    if (e.kind != TraceEvent::Kind::kRelease) continue;
    if (last >= 0.0) {
      EXPECT_GE(e.time - last, 10.0 - 1e-6);  // sporadic minimum separation
      saw_stretch |= e.time - last > 10.5;
    }
    last = e.time;
  }
  EXPECT_TRUE(saw_stretch);
  EXPECT_LT(r.jobs_released, 1000u);
}

TEST(SimSporadicTest, InitialOffsetsSpreadFirstReleases) {
  const TaskSet set({McTask::lo("a", 1, 50, 50), McTask::lo("b", 1, 50, 50),
                     McTask::lo("c", 1, 50, 50)});
  SimConfig cfg = quiet(200.0);
  cfg.initial_offset_spread = 1.0;
  cfg.record_trace = true;
  cfg.seed = 3;
  const SimResult r = simulate(set, cfg);
  std::vector<double> firsts;
  std::vector<bool> seen(3, false);
  for (const TraceEvent& e : r.trace.events)
    if (e.kind == TraceEvent::Kind::kRelease && !seen[static_cast<std::size_t>(e.task_index)]) {
      seen[static_cast<std::size_t>(e.task_index)] = true;
      firsts.push_back(e.time);
    }
  ASSERT_EQ(firsts.size(), 3u);
  EXPECT_TRUE(firsts[0] != firsts[1] || firsts[1] != firsts[2]);
}

TEST(SimTraceTest, SegmentsAreContiguousAndOrdered) {
  SimConfig cfg = quiet(500.0);
  cfg.demand.overrun_probability = 0.5;
  cfg.hi_speed = 2.0;
  cfg.record_trace = true;
  const SimResult r = simulate(table1_base(), cfg);
  ASSERT_FALSE(r.trace.segments.empty());
  for (std::size_t i = 0; i < r.trace.segments.size(); ++i) {
    const TraceSegment& s = r.trace.segments[i];
    EXPECT_LT(s.start, s.end + 1e-9);
    if (i > 0) EXPECT_GE(s.start, r.trace.segments[i - 1].end - 1e-9);
  }
}

TEST(SimTraceTest, BusyTimeMatchesSegments) {
  SimConfig cfg = quiet(500.0);
  cfg.demand.overrun_probability = 0.5;
  cfg.hi_speed = 2.0;
  cfg.record_trace = true;
  const SimResult r = simulate(table1_base(), cfg);
  double busy = 0.0;
  for (const TraceSegment& s : r.trace.segments)
    if (s.task_index >= 0) busy += s.end - s.start;
  EXPECT_NEAR(busy, r.busy_time, 1e-6);
}

TEST(SimTraceTest, EndedInHiModeCensorsLastDwell) {
  // An always-overrunning task with hi_speed barely above utilization keeps
  // the system in HI mode; cut the horizon mid-episode.
  const TaskSet set({McTask::hi("h", 2, 9, 3, 10, 10)});
  SimConfig cfg = quiet(25.0);
  cfg.demand.overrun_probability = 1.0;
  cfg.hi_speed = 0.85;  // below U(HI) = 0.9: backlog grows, never idle
  const SimResult r = simulate(set, cfg);
  EXPECT_TRUE(r.ended_in_hi_mode);
  EXPECT_TRUE(r.hi_dwell_times.empty());
}

TEST(SimTraceTest, EventNamesAreHumanReadable) {
  EXPECT_EQ(to_string(TraceEvent::Kind::kModeSwitchHi), "switch->HI");
  EXPECT_EQ(to_string(TraceEvent::Kind::kDeadlineMiss), "MISS");
}

}  // namespace
}  // namespace rbs::sim

// Tests for the fault-injection subsystem (sim/faults.hpp) and the
// SimConfig validation layer feeding it.
#include "sim/faults.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "gen/paper_examples.hpp"
#include "sim/simulator.hpp"
#include "support/tolerance.hpp"

namespace rbs::sim {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

TEST(FaultPlanValidateTest, DefaultPlanIsValid) {
  EXPECT_TRUE(validate(FaultPlan{}, 1.0, 2.0).is_ok());
}

TEST(FaultPlanValidateTest, RejectsBadFields) {
  {
    FaultPlan plan;
    plan.detection_period = -1.0;
    EXPECT_FALSE(validate(plan, 1.0, 2.0));
  }
  {
    FaultPlan plan;
    plan.episodes.push_back({});
    plan.episodes.back().extra_latency = kNaN;
    EXPECT_FALSE(validate(plan, 1.0, 2.0));
  }
  {
    FaultPlan plan;
    plan.episodes.push_back({});
    plan.episodes.back().achieved_speed = 2.5;  // above max(lo, hi)
    EXPECT_FALSE(validate(plan, 1.0, 2.0));
  }
  {
    FaultPlan plan;
    plan.random.p_deny = 1.5;
    EXPECT_FALSE(validate(plan, 1.0, 2.0));
  }
  {
    FaultPlan plan;
    plan.random.p_late = 0.5;
    plan.random.late_min = 3.0;
    plan.random.late_max = 1.0;  // inverted range
    EXPECT_FALSE(validate(plan, 1.0, 2.0));
  }
}

TEST(FaultPlanValidateTest, SlowdownSystemsAllowPartialBelowLoSpeed) {
  // Example 1: hi_speed < lo_speed is legal; a partial boost then lands
  // between hi and lo, i.e. *above* hi_speed.
  FaultPlan plan;
  plan.episodes.push_back({});
  plan.episodes.back().achieved_speed = 0.9;
  EXPECT_TRUE(validate(plan, 1.0, 0.85).is_ok());
}

TEST(ResolveFaultTest, ScriptedEpisodesIndexAndRecycle) {
  FaultPlan plan;
  plan.episodes.resize(2);
  plan.episodes[0].deny_boost = true;
  plan.episodes[1].extra_latency = 2.0;

  Rng rng(1);
  EXPECT_TRUE(resolve_fault(plan, 0, rng, 1.0, 2.0).deny_boost);
  EXPECT_DOUBLE_EQ(resolve_fault(plan, 1, rng, 1.0, 2.0).extra_latency, 2.0);
  // Beyond the script, no random model: fault-free.
  EXPECT_FALSE(resolve_fault(plan, 2, rng, 1.0, 2.0).any());

  plan.recycle = true;
  EXPECT_TRUE(resolve_fault(plan, 2, rng, 1.0, 2.0).deny_boost);
  EXPECT_DOUBLE_EQ(resolve_fault(plan, 5, rng, 1.0, 2.0).extra_latency, 2.0);
}

TEST(ResolveFaultTest, RandomModelIsDeterministicPerSeed) {
  FaultPlan plan;
  plan.random.p_deny = 0.3;
  plan.random.p_partial = 0.3;
  plan.random.p_late = 0.2;
  plan.random.late_max = 3.0;
  plan.random.p_throttle = 0.2;
  plan.random.throttle_after_min = 1.0;
  plan.random.throttle_after_max = 4.0;

  Rng a(42), b(42);
  for (std::size_t e = 0; e < 50; ++e) {
    const FaultSpec fa = resolve_fault(plan, e, a, 1.0, 2.0);
    const FaultSpec fb = resolve_fault(plan, e, b, 1.0, 2.0);
    EXPECT_EQ(fa.deny_boost, fb.deny_boost);
    EXPECT_DOUBLE_EQ(fa.extra_latency, fb.extra_latency);
    EXPECT_DOUBLE_EQ(fa.achieved_speed, fb.achieved_speed);
    EXPECT_DOUBLE_EQ(fa.throttle_after, fb.throttle_after);
    // At most one fault class per episode.
    const int classes = (fa.deny_boost ? 1 : 0) + (fa.achieved_speed > 0.0 ? 1 : 0) +
                        (fa.extra_latency > 0.0 ? 1 : 0) + (fa.throttle_after > 0.0 ? 1 : 0);
    EXPECT_LE(classes, 1);
  }
}

// ---- simulator integration ------------------------------------------------

SimConfig overrun_config(double horizon) {
  SimConfig cfg;
  cfg.horizon = horizon;
  cfg.hi_speed = 2.0;
  cfg.demand.overrun_probability = 1.0;
  cfg.record_trace = true;
  return cfg;
}

TEST(FaultInjectionTest, DeniedBoostNeverReachesHiSpeed) {
  SimConfig cfg = overrun_config(400.0);
  cfg.faults.episodes.push_back({});
  cfg.faults.episodes.back().deny_boost = true;
  cfg.faults.recycle = true;

  const SimResult r = simulate(table1_base(), cfg);
  ASSERT_GT(r.mode_switches, 0u);
  EXPECT_EQ(r.faults_injected, r.mode_switches);
  for (const TraceSegment& s : r.trace.segments) EXPECT_DOUBLE_EQ(s.speed, cfg.lo_speed);
  bool fault_event = false;
  for (const TraceEvent& e : r.trace.events)
    fault_event |= e.kind == TraceEvent::Kind::kFaultEngaged;
  EXPECT_TRUE(fault_event);
}

TEST(FaultInjectionTest, PartialBoostRunsAtAchievedSpeed) {
  SimConfig cfg = overrun_config(400.0);
  cfg.faults.episodes.push_back({});
  cfg.faults.episodes.back().achieved_speed = 1.5;
  cfg.faults.recycle = true;

  const SimResult r = simulate(table1_base(), cfg);
  ASSERT_GT(r.mode_switches, 0u);
  bool at_partial = false;
  for (const TraceSegment& s : r.trace.segments) {
    EXPECT_NE(s.speed, 2.0);  // full boost never achieved
    at_partial |= s.mode == Mode::HI && approx_eq(s.speed, 1.5, kSpeedTol);
  }
  EXPECT_TRUE(at_partial);
}

TEST(FaultInjectionTest, LateBoostKeepsLoSpeedDuringExtraLatency) {
  SimConfig cfg = overrun_config(400.0);
  cfg.faults.episodes.push_back({});
  cfg.faults.episodes.back().extra_latency = 1.0;
  cfg.faults.recycle = true;

  const SimResult r = simulate(table1_base(), cfg);
  ASSERT_GT(r.mode_switches, 0u);
  bool hi_mode_at_lo_speed = false, boosted = false;
  for (const TraceSegment& s : r.trace.segments) {
    if (s.mode != Mode::HI) continue;
    hi_mode_at_lo_speed |= s.speed == cfg.lo_speed;
    boosted |= s.speed == cfg.hi_speed;
  }
  EXPECT_TRUE(hi_mode_at_lo_speed);  // the latency window
  EXPECT_TRUE(boosted);              // the boost does engage eventually
}

TEST(FaultInjectionTest, ThrottleDownCollapsesSpeedMidEpisode) {
  SimConfig cfg = overrun_config(400.0);
  cfg.faults.episodes.push_back({});
  cfg.faults.episodes.back().throttle_after = 0.5;
  cfg.faults.episodes.back().throttle_speed = 1.25;
  cfg.faults.recycle = true;

  const SimResult r = simulate(table1_base(), cfg);
  ASSERT_GT(r.mode_switches, 0u);
  EXPECT_GT(r.throttle_downs, 0u);
  bool throttled = false, throttle_event = false;
  for (const TraceSegment& s : r.trace.segments)
    throttled |= s.mode == Mode::HI && approx_eq(s.speed, 1.25, kSpeedTol);
  for (const TraceEvent& e : r.trace.events)
    throttle_event |= e.kind == TraceEvent::Kind::kThrottleDown;
  EXPECT_TRUE(throttled);
  EXPECT_TRUE(throttle_event);
}

TEST(FaultInjectionTest, DelayedDetectionSwitchesOnPollGrid) {
  SimConfig cfg = overrun_config(600.0);
  cfg.faults.detection_period = 2.0;

  const SimResult r = simulate(table1_base(), cfg);
  ASSERT_GT(r.mode_switches, 0u);
  for (const TraceEvent& e : r.trace.events) {
    if (e.kind != TraceEvent::Kind::kModeSwitchHi) continue;
    const double phase = std::fmod(e.time, cfg.faults.detection_period);
    EXPECT_LT(std::min(phase, cfg.faults.detection_period - phase), 1e-6)
        << "switch at " << e.time << " off the poll grid";
  }
}

TEST(FaultInjectionTest, DelayedDetectionCanMissShortOverruns) {
  // With a huge polling period every overrun completes before a poll: no
  // mode switch ever happens and the overruns are counted as undetected.
  SimConfig cfg = overrun_config(600.0);
  cfg.faults.detection_period = 1000.0;

  const SimResult r = simulate(table1_base(), cfg);
  EXPECT_EQ(r.mode_switches, 0u);
  EXPECT_GT(r.undetected_overruns, 0u);
  bool undetected_event = false;
  for (const TraceEvent& e : r.trace.events)
    undetected_event |= e.kind == TraceEvent::Kind::kUndetectedOverrun;
  EXPECT_TRUE(undetected_event);
}

TEST(FaultInjectionTest, FaultFreePlanMatchesBaseline) {
  SimConfig cfg = overrun_config(1000.0);
  const SimResult base = simulate(table1_base(), cfg);
  cfg.faults.episodes.resize(3);  // scripted but empty: no faults
  const SimResult scripted = simulate(table1_base(), cfg);
  EXPECT_EQ(base.mode_switches, scripted.mode_switches);
  EXPECT_EQ(base.misses.size(), scripted.misses.size());
  EXPECT_EQ(scripted.faults_injected, 0u);
  EXPECT_DOUBLE_EQ(base.busy_time, scripted.busy_time);
}

// ---- SimConfig validation (satellite: self-validating configs) -----------

TEST(SimConfigValidationTest, RejectsDegenerateConfigs) {
  const TaskSet set = table1_base();
  {
    SimConfig cfg;
    cfg.horizon = -1.0;
    EXPECT_FALSE(try_simulate(set, cfg));
  }
  {
    SimConfig cfg;
    cfg.hi_speed = kNaN;
    EXPECT_FALSE(try_simulate(set, cfg));
  }
  {
    SimConfig cfg;
    cfg.lo_speed = 0.0;
    EXPECT_FALSE(try_simulate(set, cfg));
  }
  {
    SimConfig cfg;
    cfg.demand.overrun_probability = 1.5;
    EXPECT_FALSE(try_simulate(set, cfg));
  }
  {
    SimConfig cfg;
    cfg.speed_change_latency = -2.0;
    EXPECT_FALSE(try_simulate(set, cfg));
  }
  {
    SimConfig cfg;
    cfg.faults.detection_period = kNaN;
    EXPECT_FALSE(try_simulate(set, cfg));
  }
}

TEST(SimConfigValidationTest, RejectsMalformedScripts) {
  const TaskSet set = table1_base();
  {
    SimConfig cfg;
    cfg.scripted_arrivals.resize(1);  // set has 2 tasks
    EXPECT_FALSE(try_simulate(set, cfg));
  }
  {
    SimConfig cfg;
    cfg.scripted_arrivals.resize(2);
    cfg.scripted_arrivals[0] = {{5.0, 3.0}, {1.0, 3.0}};  // releases descend
    EXPECT_FALSE(try_simulate(set, cfg));
  }
  {
    SimConfig cfg;
    cfg.scripted_arrivals.resize(2);
    cfg.scripted_arrivals[0] = {{0.0, -3.0}};  // negative demand
    EXPECT_FALSE(try_simulate(set, cfg));
  }
}

TEST(SimConfigValidationTest, ThrowingWrapperAndErrorMessage) {
  const TaskSet set = table1_base();
  SimConfig cfg;
  cfg.horizon = kNaN;
  const Expected<SimResult> result = try_simulate(set, cfg);
  ASSERT_FALSE(result);
  EXPECT_FALSE(result.error_message().empty());
  EXPECT_THROW(simulate(set, cfg), std::invalid_argument);
}

TEST(SimConfigValidationTest, SlowdownHiSpeedIsAccepted) {
  // Example 1's degraded system runs *slower* in HI mode; validation must
  // not reject hi_speed < lo_speed.
  SimConfig cfg;
  cfg.horizon = 100.0;
  cfg.hi_speed = 0.95;
  cfg.demand.overrun_probability = 1.0;
  EXPECT_TRUE(try_simulate(table1_degraded(), cfg).is_ok());
}

}  // namespace
}  // namespace rbs::sim

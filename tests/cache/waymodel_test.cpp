// Tests for the DCPL cache-way model.
#include "cache/waymodel.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "core/edf.hpp"
#include "core/speedup.hpp"

namespace rbs {
namespace {

std::vector<CacheTaskSpec> demo_specs(int max_ways) {
  // Two cache-sensitive HI tasks plus two LO tasks.
  std::vector<CacheTaskSpec> specs;
  specs.push_back({"h1", Criticality::HI, 100,
                   WcetCurve::exponential(8, 1.0, 2.0, max_ways),
                   WcetCurve::exponential(20, 1.0, 2.0, max_ways)});
  specs.push_back({"h2", Criticality::HI, 150,
                   WcetCurve::exponential(12, 1.5, 2.0, max_ways),
                   WcetCurve::exponential(30, 1.5, 2.0, max_ways)});
  specs.push_back({"l1", Criticality::LO, 120,
                   WcetCurve::exponential(20, 0.5, 2.0, max_ways), {}});
  specs.push_back({"l2", Criticality::LO, 200,
                   WcetCurve::exponential(30, 0.5, 2.0, max_ways), {}});
  return specs;
}

TEST(WcetCurveTest, TableLookupAndSaturation) {
  const WcetCurve curve(std::vector<Ticks>{10, 8, 7, 7});
  EXPECT_EQ(curve.at(0), 10);
  EXPECT_EQ(curve.at(2), 7);
  EXPECT_EQ(curve.at(99), 7);   // saturates at the last entry
  EXPECT_EQ(curve.at(-3), 10);  // negative clamps to zero ways
  EXPECT_EQ(curve.max_ways(), 3);
}

TEST(WcetCurveTest, RejectsIllFormedCurves) {
  EXPECT_THROW(WcetCurve(std::vector<Ticks>{}), std::invalid_argument);
  EXPECT_THROW(WcetCurve(std::vector<Ticks>{5, 6}), std::invalid_argument);  // increasing
  EXPECT_THROW(WcetCurve(std::vector<Ticks>{0}), std::invalid_argument);
}

TEST(WcetCurveTest, ExponentialShape) {
  const WcetCurve c = WcetCurve::exponential(10, 1.0, 2.0, 8);
  EXPECT_EQ(c.at(0), 20);  // base * (1 + 1.0)
  EXPECT_GT(c.at(0), c.at(4));
  EXPECT_GE(c.at(4), c.at(8));
  EXPECT_GE(c.at(8), 10);  // never below base
}

TEST(MaterializeCacheTest, BuildsValidTerminationSet) {
  const auto specs = demo_specs(8);
  const WayAllocation a_lo{2, 2, 2, 2};
  const WayAllocation a_hi{4, 4, 0, 0};
  const TaskSet set = materialize_cache_set(specs, a_lo, a_hi, 0.5);
  ASSERT_EQ(set.size(), 4u);
  EXPECT_TRUE(set[0].is_hi());
  EXPECT_TRUE(set[2].dropped_in_hi());
  // C(LO) from the LO allocation, C(HI) from the (larger) HI allocation.
  EXPECT_EQ(set[0].wcet(Mode::LO), specs[0].lo_curve.at(2));
  EXPECT_EQ(set[0].wcet(Mode::HI), specs[0].hi_curve.at(4));
}

TEST(MaterializeCacheTest, HiAllocationNeverShrinksBelowLo) {
  const auto specs = demo_specs(8);
  const WayAllocation a_lo{4, 4, 0, 0};
  const WayAllocation a_hi{1, 1, 0, 0};  // nominally smaller: must be ignored
  const TaskSet set = materialize_cache_set(specs, a_lo, a_hi, 0.5);
  EXPECT_EQ(set[0].wcet(Mode::HI), specs[0].hi_curve.at(4));
}

TEST(MaterializeCacheTest, ChiClampedAboveCLo) {
  // A HI curve that dips below the LO WCET at many ways must be clamped to
  // satisfy Eq. (1).
  std::vector<CacheTaskSpec> specs;
  specs.push_back({"h", Criticality::HI, 100, WcetCurve(std::vector<Ticks>{10, 10}),
                   WcetCurve(std::vector<Ticks>{12, 6})});
  const TaskSet set =
      materialize_cache_set(specs, WayAllocation{0}, WayAllocation{1}, 0.5);
  EXPECT_EQ(set[0].wcet(Mode::HI), 10);  // clamped to C(LO)
}

TEST(MaterializeCacheTest, RejectsMismatchedAllocation) {
  EXPECT_THROW(
      materialize_cache_set(demo_specs(8), WayAllocation{1, 1}, WayAllocation{1, 1}, 0.5),
      std::invalid_argument);
}

TEST(GreedyAllocationTest, ReallocationNeverHurts) {
  const auto specs = demo_specs(8);
  const WayAllocation a_lo{2, 2, 2, 2};
  const CachePlanResult plan = greedy_hi_allocation(specs, a_lo, 8, 0.5);
  // Baseline: no reallocation (HI tasks keep their LO shares).
  const TaskSet baseline =
      materialize_cache_set(specs, a_lo, WayAllocation{2, 2, 0, 0}, 0.5);
  EXPECT_LE(plan.s_min, min_speedup_value(baseline) + 1e-12);
  EXPECT_NEAR(plan.s_min, min_speedup_value(plan.set), 1e-12);
}

TEST(GreedyAllocationTest, RespectsCacheCapacity) {
  const auto specs = demo_specs(8);
  const WayAllocation a_lo{2, 2, 2, 2};
  const CachePlanResult plan = greedy_hi_allocation(specs, a_lo, 8, 0.5);
  EXPECT_LE(allocated_ways(plan.hi_allocation), 8);
  // LO tasks hold no HI-mode ways.
  EXPECT_EQ(plan.hi_allocation[2], 0);
  EXPECT_EQ(plan.hi_allocation[3], 0);
  // HI tasks never below their LO-mode share.
  EXPECT_GE(plan.hi_allocation[0], 2);
  EXPECT_GE(plan.hi_allocation[1], 2);
}

TEST(GreedyAllocationTest, CacheInsensitiveCurvesGainNothing) {
  std::vector<CacheTaskSpec> specs;
  const WcetCurve flat_lo(std::vector<Ticks>{10, 10, 10, 10, 10});
  const WcetCurve flat_hi(std::vector<Ticks>{25, 25, 25, 25, 25});
  specs.push_back({"h", Criticality::HI, 100, flat_lo, flat_hi});
  specs.push_back({"l", Criticality::LO, 100, flat_lo, {}});
  const WayAllocation a_lo{2, 2};
  const CachePlanResult plan = greedy_hi_allocation(specs, a_lo, 4, 0.5);
  EXPECT_EQ(plan.hi_allocation[0], 2);  // no way was worth taking
}

TEST(GreedyAllocationTest, RejectsOversubscribedLoAllocation) {
  EXPECT_THROW(greedy_hi_allocation(demo_specs(8), WayAllocation{4, 4, 4, 4}, 8, 0.5),
               std::invalid_argument);
}

TEST(GreedyAllocationTest, InducedSetStaysLoSchedulable) {
  const auto specs = demo_specs(8);
  const WayAllocation a_lo{2, 2, 2, 2};
  const CachePlanResult plan = greedy_hi_allocation(specs, a_lo, 8, 0.6);
  EXPECT_TRUE(lo_mode_schedulable(plan.set));  // HI-mode ways don't touch LO mode
}

}  // namespace
}  // namespace rbs

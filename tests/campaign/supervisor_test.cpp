// Tests for the fault-tolerant campaign supervisor: retry/quarantine policy,
// soft-deadline kills, stop drains, journal-backed resume, and the
// determinism contract (any jobs count, resumed or not -> same payloads).
#include "campaign/supervisor.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "campaign/journal.hpp"
#include "campaign/runner.hpp"
#include "gen/rng.hpp"

namespace rbs::campaign {
namespace {

SupervisorOptions base_options(unsigned jobs, std::uint64_t seed = 7) {
  SupervisorOptions o;
  o.campaign.jobs = jobs;
  o.campaign.seed = seed;
  return o;
}

/// The reference workload: one deterministic row per item, derived from the
/// item's private seed stream only.
std::string plain_row(std::size_t index, Rng& rng) {
  return std::to_string(index) + "," + std::to_string(rng.uniform_int(0, 1'000'000));
}

std::vector<std::string> payloads(const CampaignReport& report) {
  std::vector<std::string> out;
  out.reserve(report.items.size());
  for (const ItemOutcome& item : report.items) out.push_back(item.payload);
  return out;
}

TEST(SupervisorTest, CompletesAllItemsAndMatchesAcrossJobCounts) {
  constexpr std::size_t kCount = 24;
  const SupervisedFn fn = [](std::size_t index, Rng& rng, const CancelToken&) {
    return plain_row(index, rng);
  };
  const CampaignReport serial = Supervisor(base_options(1)).run(kCount, fn);
  const CampaignReport wide = Supervisor(base_options(8)).run(kCount, fn);

  EXPECT_TRUE(serial.all_completed());
  EXPECT_EQ(serial.completed, kCount);
  EXPECT_FALSE(serial.interrupted);
  EXPECT_TRUE(serial.quarantined.empty());
  EXPECT_EQ(payloads(serial), payloads(wide));
  for (std::size_t i = 0; i < kCount; ++i) {
    EXPECT_EQ(serial.items[i].state, ItemOutcome::State::kOk);
    EXPECT_EQ(serial.items[i].attempts, 1u);
  }
}

TEST(SupervisorTest, RetriesTransientFailureWithTheSameSeedStream) {
  constexpr std::size_t kCount = 8;
  const CampaignReport clean = Supervisor(base_options(1)).run(
      kCount, [](std::size_t i, Rng& rng, const CancelToken&) { return plain_row(i, rng); });

  std::atomic<bool> armed{true};
  const CampaignReport faulty = Supervisor(base_options(4)).run(
      kCount, [&](std::size_t i, Rng& rng, const CancelToken&) {
        if (i == 3 && armed.exchange(false)) throw std::runtime_error("transient glitch");
        return plain_row(i, rng);
      });

  EXPECT_TRUE(faulty.all_completed());
  EXPECT_EQ(faulty.retried, 1u);
  EXPECT_EQ(faulty.items[3].attempts, 2u);
  // The retry restarted item 3's private stream, so the row is unchanged.
  EXPECT_EQ(payloads(faulty), payloads(clean));
}

TEST(SupervisorTest, QuarantinesPoisonItemWithoutHurtingOthers) {
  constexpr std::size_t kCount = 10;
  SupervisorOptions options = base_options(4);
  options.max_attempts = 2;
  std::atomic<int> poison_runs{0};
  const CampaignReport report = Supervisor(options).run(
      kCount, [&](std::size_t i, Rng& rng, const CancelToken&) -> std::string {
        if (i == 5) {
          ++poison_runs;
          throw std::runtime_error("deterministic poison");
        }
        return plain_row(i, rng);
      });

  EXPECT_EQ(poison_runs.load(), 2);
  EXPECT_EQ(report.completed, kCount - 1);
  ASSERT_EQ(report.quarantined.size(), 1u);
  EXPECT_EQ(report.quarantined[0], 5u);
  ASSERT_EQ(report.errors.size(), 1u);
  EXPECT_NE(report.errors[0].find("deterministic poison"), std::string::npos);
  EXPECT_EQ(report.items[5].state, ItemOutcome::State::kQuarantined);
  EXPECT_EQ(report.items[5].attempts, 2u);
  EXPECT_EQ(report.retried, 1u);  // the first poison attempt was requeued once
  EXPECT_FALSE(report.interrupted);
  for (std::size_t i = 0; i < kCount; ++i)
    if (i != 5) EXPECT_EQ(report.items[i].state, ItemOutcome::State::kOk);
}

TEST(SupervisorTest, DeadlineKillsHangingItemAndTheRetrySucceeds) {
  constexpr std::size_t kCount = 6;
  SupervisorOptions options = base_options(2);
  options.soft_deadline_s = 0.05;
  std::atomic<bool> hang_armed{true};
  const CampaignReport report = Supervisor(options).run(
      kCount, [&](std::size_t i, Rng& rng, const CancelToken& token) {
        if (i == 2 && hang_armed.exchange(false)) {
          // A transient hang: spin on the token until the watchdog cancels.
          while (true) {
            token.throw_if_cancelled();
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
          }
        }
        return plain_row(i, rng);
      });

  EXPECT_TRUE(report.all_completed());
  EXPECT_EQ(report.deadline_kills, 1u);
  EXPECT_EQ(report.retried, 1u);
  EXPECT_EQ(report.items[2].attempts, 2u);
  EXPECT_EQ(report.items[2].state, ItemOutcome::State::kOk);

  // Same campaign without the hang: identical payloads.
  const CampaignReport clean = Supervisor(base_options(1)).run(
      kCount, [](std::size_t i, Rng& rng, const CancelToken&) { return plain_row(i, rng); });
  EXPECT_EQ(payloads(report), payloads(clean));
}

TEST(SupervisorTest, StopFlagDrainsInFlightAndReportsInterrupted) {
  constexpr std::size_t kCount = 64;
  std::atomic<bool> stop{false};
  SupervisorOptions options = base_options(2);
  options.stop = &stop;
  const CampaignReport report = Supervisor(options).run(
      kCount, [&](std::size_t i, Rng& rng, const CancelToken&) {
        if (i == 0) stop.store(true);
        // Slow items so the 15 ms watchdog poll lands while work remains.
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
        return plain_row(i, rng);
      });

  EXPECT_TRUE(report.interrupted);
  EXPECT_LT(report.completed, kCount);
  EXPECT_GT(report.completed, 0u);  // drained items keep their results
  std::size_t pending = 0;
  for (const ItemOutcome& item : report.items)
    if (item.state == ItemOutcome::State::kPending) ++pending;
  EXPECT_EQ(pending, kCount - report.completed);
  EXPECT_TRUE(report.quarantined.empty());
}

TEST(SupervisorTest, ResumeInstallsJournaledVerdictsAndRunsOnlyTheRest) {
  constexpr std::size_t kCount = 6;
  SupervisorOptions options = base_options(2);
  options.max_attempts = 2;

  LoadedJournal loaded;
  loaded.header = {options.campaign.seed, kCount, "test"};
  loaded.records = {
      {0, 1, JournalRecord::Kind::kOk, "journaled-0"},
      {1, 1, JournalRecord::Kind::kFailed, "glitch"},               // 1 retry left
      {2, 1, JournalRecord::Kind::kFailed, "poison"},               // budget
      {2, 2, JournalRecord::Kind::kFailed, "poison"},               //   exhausted
      {3, 2, JournalRecord::Kind::kQuarantined, "already judged"},  // final verdict
  };

  std::mutex mu;
  std::set<std::size_t> executed;
  const CampaignReport report = Supervisor(options).run(
      kCount,
      [&](std::size_t i, Rng& rng, const CancelToken&) {
        {
          const std::lock_guard<std::mutex> lock(mu);
          executed.insert(i);
        }
        return plain_row(i, rng);
      },
      &loaded);

  // Item 0 kept its journaled payload without re-running; 3 stayed
  // quarantined; 2 had no retry budget left and was quarantined on resume.
  EXPECT_EQ(executed, (std::set<std::size_t>{1, 4, 5}));
  EXPECT_EQ(report.items[0].payload, "journaled-0");
  EXPECT_EQ(report.items[0].state, ItemOutcome::State::kOk);
  EXPECT_EQ(report.items[3].state, ItemOutcome::State::kQuarantined);
  EXPECT_EQ(report.items[2].state, ItemOutcome::State::kQuarantined);
  EXPECT_NE(report.items[2].payload.find("poison"), std::string::npos);
  EXPECT_EQ(report.items[1].state, ItemOutcome::State::kOk);
  EXPECT_EQ(report.items[1].attempts, 2u);  // one journaled failure + the rerun
  EXPECT_EQ(report.completed, 4u);
  EXPECT_EQ((std::vector<std::size_t>{2, 3}), report.quarantined);
  EXPECT_FALSE(report.interrupted);
}

TEST(SupervisorTest, JournalRoundTripReproducesTheUninterruptedCampaign) {
  constexpr std::size_t kCount = 12;
  const std::string path = testing::TempDir() + "/supervisor_journal.jsonl";
  const JournalHeader header{7, kCount, "supervisor-test"};

  const CampaignReport clean = Supervisor(base_options(1)).run(
      kCount, [](std::size_t i, Rng& rng, const CancelToken&) { return plain_row(i, rng); });

  // First run: journal attached, one transient failure, stop after enough
  // verdicts landed (simulated by a fresh supervisor over a partial journal:
  // here we simply journal the full run, then resume finds nothing to do).
  {
    auto writer = JournalWriter::create(path, header);
    ASSERT_TRUE(writer.is_ok()) << writer.status().message();
    SupervisorOptions options = base_options(4);
    options.journal = &writer.value();
    std::atomic<bool> armed{true};
    const CampaignReport first = Supervisor(options).run(
        kCount, [&](std::size_t i, Rng& rng, const CancelToken&) {
          if (i == 9 && armed.exchange(false)) throw std::runtime_error("once");
          return plain_row(i, rng);
        });
    ASSERT_TRUE(first.all_completed());
    ASSERT_TRUE(first.journal_error.empty()) << first.journal_error;
    EXPECT_EQ(payloads(first), payloads(clean));
  }

  // The journal now holds 12 kOk verdicts and 1 kFailed attempt.
  const Expected<LoadedJournal> loaded = load_journal(path);
  ASSERT_TRUE(loaded.is_ok()) << loaded.status().message();
  EXPECT_EQ(loaded.value().records.size(), kCount + 1);
  EXPECT_EQ(loaded.value().failed_attempts(9), 1u);

  // Resume: every verdict is installed, the workload function never runs,
  // and the payloads still match the uninterrupted campaign.
  std::atomic<int> executions{0};
  const CampaignReport resumed = Supervisor(base_options(8)).run(
      kCount,
      [&](std::size_t i, Rng& rng, const CancelToken&) {
        ++executions;
        return plain_row(i, rng);
      },
      &loaded.value());
  EXPECT_EQ(executions.load(), 0);
  EXPECT_TRUE(resumed.all_completed());
  EXPECT_EQ(payloads(resumed), payloads(clean));
  EXPECT_EQ(resumed.retried, 1u);  // the journaled failed attempt is counted
  std::remove(path.c_str());
}

TEST(SupervisorTest, CancelTokenThrowsOnlyWhenFlagged) {
  CancelToken token;
  EXPECT_FALSE(token.cancelled());
  EXPECT_NO_THROW(token.throw_if_cancelled());
  token.cancel(CancelToken::Reason::kDeadline);
  EXPECT_TRUE(token.cancelled());
  EXPECT_EQ(token.reason(), CancelToken::Reason::kDeadline);
  // First reason wins.
  token.cancel(CancelToken::Reason::kStop);
  EXPECT_EQ(token.reason(), CancelToken::Reason::kDeadline);
  EXPECT_THROW(token.throw_if_cancelled(), CampaignCancelled);
}

TEST(SupervisorTest, DeadlineBoundaryCancellationJournalsExactlyOneRecord) {
  // The nastiest watchdog interleaving, made deterministic: the item spins
  // until the watchdog flags its token at the soft deadline, then finishes
  // successfully anyway -- completion and cancellation land at the same
  // boundary. The soft-deadline contract says the computed result wins, and
  // the journal must hold one record -- and only one -- for the item (no
  // kFailed ghost from the kill path racing the kOk from the worker). Run
  // under TSan in CI's campaign job, this also proves the token handoff
  // between watchdog and worker is race-free.
  const std::string path = testing::TempDir() + "/deadline_boundary_journal.jsonl";
  const JournalHeader header{7, 1, "deadline-boundary"};
  {
    auto writer = JournalWriter::create(path, header);
    ASSERT_TRUE(writer.is_ok()) << writer.status().message();
    SupervisorOptions options = base_options(2);
    options.soft_deadline_s = 0.03;  // watchdog polls every 15ms
    options.journal = &writer.value();
    const CampaignReport report = Supervisor(options).run(
        1, [](std::size_t index, Rng& rng, const CancelToken& token) {
          while (!token.cancelled())
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
          return plain_row(index, rng);  // finish exactly at the boundary
        });
    ASSERT_TRUE(report.all_completed());
    ASSERT_TRUE(report.journal_error.empty()) << report.journal_error;
    EXPECT_EQ(report.items[0].state, ItemOutcome::State::kOk);
    EXPECT_EQ(report.items[0].attempts, 1u);
    EXPECT_EQ(report.retried, 0u);
    // The kill never charged: the result arrived, so it is not a deadline loss.
    EXPECT_EQ(report.deadline_kills, 0u);
  }

  const Expected<LoadedJournal> loaded = load_journal(path);
  ASSERT_TRUE(loaded.is_ok()) << loaded.status().message();
  ASSERT_EQ(loaded.value().records.size(), 1u);
  EXPECT_EQ(loaded.value().records[0].index, 0u);
  EXPECT_EQ(loaded.value().records[0].attempt, 1u);
  EXPECT_EQ(loaded.value().records[0].kind, JournalRecord::Kind::kOk);
  EXPECT_EQ(loaded.value().duplicate_records, 0u);

  // Determinism across the cancellation: the payload equals an undisturbed
  // single-item run with the same seed.
  const CampaignReport undisturbed = Supervisor(base_options(1)).run(
      1, [](std::size_t i, Rng& rng, const CancelToken&) { return plain_row(i, rng); });
  EXPECT_EQ(loaded.value().records[0].payload, undisturbed.items[0].payload);
  std::remove(path.c_str());
}

TEST(SupervisorTest, ZeroItemsIsACompletedCampaign) {
  const CampaignReport report = Supervisor(base_options(4)).run(
      0, [](std::size_t, Rng&, const CancelToken&) { return std::string("unreached"); });
  EXPECT_TRUE(report.all_completed());
  EXPECT_EQ(report.items.size(), 0u);
  EXPECT_FALSE(report.interrupted);
}

// --- DeadlineWatchdog (the piece Supervisor and the service layer share) ---

TEST(DeadlineWatchdogTest, InertWithoutDeadlineOrStopFlag) {
  DeadlineWatchdog watchdog({});
  EXPECT_FALSE(watchdog.active());
  auto token = std::make_shared<CancelToken>();
  EXPECT_EQ(watchdog.watch(token), 0u);
  watchdog.unwatch(0);  // quietly accepted
  EXPECT_FALSE(token->cancelled());
}

TEST(DeadlineWatchdogTest, CancelsOverdueTokensWithDeadlineReason) {
  DeadlineWatchdog::Options options;
  options.soft_deadline_s = 0.02;
  options.poll = std::chrono::milliseconds(2);
  DeadlineWatchdog watchdog(std::move(options));
  ASSERT_TRUE(watchdog.active());

  auto overdue = std::make_shared<CancelToken>();
  const std::uint64_t id = watchdog.watch(overdue);
  EXPECT_NE(id, 0u);
  for (int i = 0; i < 500 && !overdue->cancelled(); ++i)
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  EXPECT_EQ(overdue->reason(), CancelToken::Reason::kDeadline);

  // A token unwatched before its deadline is never touched.
  auto finished = std::make_shared<CancelToken>();
  watchdog.unwatch(watchdog.watch(finished));
  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  EXPECT_FALSE(finished->cancelled());
  watchdog.unwatch(id);
}

TEST(DeadlineWatchdogTest, StopFlagFiresCallbackOnceAndDrainsTokens) {
  std::atomic<bool> stop{false};
  std::atomic<int> stop_calls{0};
  DeadlineWatchdog::Options options;
  options.stop = &stop;
  options.on_stop = [&stop_calls] { ++stop_calls; };
  options.poll = std::chrono::milliseconds(2);
  DeadlineWatchdog watchdog(std::move(options));
  ASSERT_TRUE(watchdog.active());

  auto token = std::make_shared<CancelToken>();
  const std::uint64_t id = watchdog.watch(token);
  stop.store(true);
  for (int i = 0; i < 500 && !token->cancelled(); ++i)
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  EXPECT_EQ(token->reason(), CancelToken::Reason::kStop);
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(stop_calls.load(), 1);  // exactly once, not once per poll
  watchdog.unwatch(id);
}

}  // namespace
}  // namespace rbs::campaign

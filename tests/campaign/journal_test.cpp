// Tests for the CRC-guarded campaign journal: round-trip, kill-at-any-byte
// recovery, corruption rejection, duplicate folding, resume-append.
#include "campaign/journal.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

namespace rbs::campaign {
namespace {

std::string temp_path(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>());
}

void write_file(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

JournalHeader demo_header() { return {42, 5, "unit-test|tag"}; }

std::vector<JournalRecord> demo_records() {
  return {
      {0, 1, JournalRecord::Kind::kOk, "0,1.5,200"},
      {1, 1, JournalRecord::Kind::kFailed, "boom: \"quoted\",\nnewline\tand\x01control"},
      {1, 2, JournalRecord::Kind::kOk, "1,2.25,315"},
      {2, 3, JournalRecord::Kind::kQuarantined, "gave up after 3 attempts"},
  };
}

std::string make_journal(const std::string& path) {
  auto writer = JournalWriter::create(path, demo_header());
  EXPECT_TRUE(writer.is_ok()) << writer.status().message();
  for (const JournalRecord& r : demo_records()) {
    const Status s = writer.value().append(r);
    EXPECT_TRUE(s.is_ok()) << s.message();
  }
  return read_file(path);  // writer closed at scope exit; contents are synced per append
}

TEST(JournalTest, RoundTripsHeaderAndRecords) {
  const std::string path = temp_path("journal_roundtrip.jsonl");
  make_journal(path);

  const Expected<LoadedJournal> loaded = load_journal(path);
  ASSERT_TRUE(loaded.is_ok()) << loaded.status().message();
  const LoadedJournal& j = loaded.value();
  EXPECT_EQ(j.header.seed, 42u);
  EXPECT_EQ(j.header.items, 5u);
  EXPECT_EQ(j.header.tag, "unit-test|tag");
  EXPECT_EQ(j.dropped_tail_bytes, 0u);
  EXPECT_EQ(j.duplicate_records, 0u);

  const std::vector<JournalRecord> want = demo_records();
  ASSERT_EQ(j.records.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(j.records[i].index, want[i].index);
    EXPECT_EQ(j.records[i].attempt, want[i].attempt);
    EXPECT_EQ(j.records[i].kind, want[i].kind);
    EXPECT_EQ(j.records[i].payload, want[i].payload) << "record " << i;
  }

  ASSERT_NE(j.final_record(1), nullptr);
  EXPECT_EQ(j.final_record(1)->payload, "1,2.25,315");
  EXPECT_EQ(j.failed_attempts(1), 1u);
  EXPECT_EQ(j.final_record(3), nullptr);
  std::remove(path.c_str());
}

// The tentpole property: a process killed at ANY byte offset after the
// header landed leaves a journal that still loads, recovering some prefix
// of the appended records.
TEST(JournalTest, LoadsEveryKillPrefix) {
  const std::string path = temp_path("journal_prefix.jsonl");
  const std::string full = make_journal(path);
  const std::size_t header_len = full.find('\n') + 1;

  for (std::size_t cut = header_len; cut <= full.size(); ++cut) {
    write_file(path, full.substr(0, cut));
    const Expected<LoadedJournal> loaded = load_journal(path);
    ASSERT_TRUE(loaded.is_ok()) << "cut at byte " << cut << ": " << loaded.status().message();
    // Only whole records survive, and recovery reports exactly the bytes
    // it had to drop.
    EXPECT_EQ(loaded.value().valid_bytes + loaded.value().dropped_tail_bytes, cut);
    EXPECT_LE(loaded.value().records.size(), demo_records().size());
  }
  std::remove(path.c_str());
}

TEST(JournalTest, RecoversTornTailAndResumeTruncatesIt) {
  const std::string path = temp_path("journal_torn.jsonl");
  const std::string full = make_journal(path);
  write_file(path, full + "{\"i\":3,\"a\":1,\"k\":\"ok\",\"p\":\"half-writ");

  Expected<LoadedJournal> loaded = load_journal(path);
  ASSERT_TRUE(loaded.is_ok()) << loaded.status().message();
  EXPECT_GT(loaded.value().dropped_tail_bytes, 0u);
  EXPECT_EQ(loaded.value().records.size(), demo_records().size());

  // Resuming truncates the torn bytes and appends after the last good line.
  {
    auto writer = JournalWriter::resume(path, loaded.value());
    ASSERT_TRUE(writer.is_ok()) << writer.status().message();
    const Status s =
        writer.value().append({3, 1, JournalRecord::Kind::kOk, "3,9.5,77"});
    ASSERT_TRUE(s.is_ok()) << s.message();
  }
  const Expected<LoadedJournal> reloaded = load_journal(path);
  ASSERT_TRUE(reloaded.is_ok()) << reloaded.status().message();
  EXPECT_EQ(reloaded.value().dropped_tail_bytes, 0u);
  ASSERT_EQ(reloaded.value().records.size(), demo_records().size() + 1);
  EXPECT_EQ(reloaded.value().records.back().payload, "3,9.5,77");
  std::remove(path.c_str());
}

TEST(JournalTest, RejectsFlippedByteBeforeTheTail) {
  const std::string path = temp_path("journal_flip.jsonl");
  std::string full = make_journal(path);
  // Flip one payload byte in the SECOND line (a record followed by more
  // records): not a torn tail, must be a hard, descriptive error.
  const std::size_t line2 = full.find('\n') + 1;
  const std::size_t target = full.find("\"p\":\"", line2) + 5;
  ASSERT_LT(target, full.size());
  full[target] = full[target] == 'X' ? 'Y' : 'X';
  write_file(path, full);

  const Expected<LoadedJournal> loaded = load_journal(path);
  ASSERT_FALSE(loaded.is_ok());
  EXPECT_NE(loaded.status().message().find("line 2"), std::string::npos)
      << loaded.status().message();
  EXPECT_NE(loaded.status().message().find("CRC"), std::string::npos)
      << loaded.status().message();
  std::remove(path.c_str());
}

TEST(JournalTest, CorruptFinalLineIsRecoveredAsTornTail) {
  // A flipped byte in the very last line is indistinguishable from a torn
  // write of that line: recovery drops it instead of failing the load.
  const std::string path = temp_path("journal_flip_tail.jsonl");
  std::string full = make_journal(path);
  const std::size_t last_line = full.rfind("{\"i\"");
  std::string corrupted = full;
  corrupted[last_line + 10] ^= 0x20;
  write_file(path, corrupted);

  const Expected<LoadedJournal> loaded = load_journal(path);
  ASSERT_TRUE(loaded.is_ok()) << loaded.status().message();
  EXPECT_GT(loaded.value().dropped_tail_bytes, 0u);
  EXPECT_EQ(loaded.value().records.size(), demo_records().size() - 1);
  std::remove(path.c_str());
}

TEST(JournalTest, ExactDuplicateRecordsAreBenign) {
  const std::string path = temp_path("journal_dup.jsonl");
  const std::string full = make_journal(path);
  // Replay the first record verbatim (a crash between append and
  // bookkeeping makes the resumed run re-append it).
  const JournalRecord first = demo_records()[0];
  write_file(path, full + serialize_record(first));

  const Expected<LoadedJournal> loaded = load_journal(path);
  ASSERT_TRUE(loaded.is_ok()) << loaded.status().message();
  EXPECT_EQ(loaded.value().duplicate_records, 1u);
  EXPECT_EQ(loaded.value().records.size(), demo_records().size());
  std::remove(path.c_str());
}

TEST(JournalTest, FailureReplayedWithBumpedAttemptIsBenign) {
  // A resume that re-executes a failed item re-logs the same deterministic
  // failure under a bumped attempt counter. Such a record differs from the
  // one on file ONLY in the retry count, so it folds as a duplicate instead
  // of inflating failed_attempts() across crash/resume cycles.
  const std::string path = temp_path("journal_retry_dup.jsonl");
  auto writer = JournalWriter::create(path, demo_header());
  ASSERT_TRUE(writer.is_ok()) << writer.status().message();
  ASSERT_TRUE(writer.value().append({1, 1, JournalRecord::Kind::kFailed, "boom: X"}).is_ok());
  ASSERT_TRUE(writer.value().append({1, 2, JournalRecord::Kind::kFailed, "boom: X"}).is_ok());
  ASSERT_TRUE(writer.value().append({1, 2, JournalRecord::Kind::kOk, "1,2.25,315"}).is_ok());

  const Expected<LoadedJournal> loaded = load_journal(path);
  ASSERT_TRUE(loaded.is_ok()) << loaded.status().message();
  EXPECT_EQ(loaded.value().duplicate_records, 1u);
  EXPECT_EQ(loaded.value().records.size(), 2u);
  EXPECT_EQ(loaded.value().failed_attempts(1), 1u);
  ASSERT_NE(loaded.value().final_record(1), nullptr);
  EXPECT_EQ(loaded.value().final_record(1)->payload, "1,2.25,315");
  std::remove(path.c_str());
}

TEST(JournalTest, DistinctFailurePayloadsStillCountAsRetries) {
  // A genuinely different failure at a new attempt is NOT a replay: both
  // records stay live and the retry budget sees two attempts.
  const std::string path = temp_path("journal_retry_distinct.jsonl");
  auto writer = JournalWriter::create(path, demo_header());
  ASSERT_TRUE(writer.is_ok()) << writer.status().message();
  ASSERT_TRUE(writer.value().append({1, 1, JournalRecord::Kind::kFailed, "timeout"}).is_ok());
  ASSERT_TRUE(writer.value().append({1, 2, JournalRecord::Kind::kFailed, "crashed"}).is_ok());

  const Expected<LoadedJournal> loaded = load_journal(path);
  ASSERT_TRUE(loaded.is_ok()) << loaded.status().message();
  EXPECT_EQ(loaded.value().duplicate_records, 0u);
  EXPECT_EQ(loaded.value().failed_attempts(1), 2u);
  std::remove(path.c_str());
}

TEST(JournalTest, RejectsConflictingDuplicateVerdicts) {
  const std::string path = temp_path("journal_conflict.jsonl");
  const std::string full = make_journal(path);
  // Same item 0, different payload, followed by one more valid record so the
  // conflict is not on the final line.
  write_file(path, full + serialize_record({0, 1, JournalRecord::Kind::kOk, "different"}) +
                       serialize_record({3, 1, JournalRecord::Kind::kOk, "x"}));

  const Expected<LoadedJournal> loaded = load_journal(path);
  ASSERT_FALSE(loaded.is_ok());
  EXPECT_NE(loaded.status().message().find("conflicting"), std::string::npos)
      << loaded.status().message();
  std::remove(path.c_str());
}

TEST(JournalTest, RejectsFailedAttemptAfterFinalVerdict) {
  const std::string path = temp_path("journal_late_fail.jsonl");
  const std::string full = make_journal(path);
  write_file(path, full + serialize_record({0, 2, JournalRecord::Kind::kFailed, "late"}) +
                       serialize_record({3, 1, JournalRecord::Kind::kOk, "x"}));
  const Expected<LoadedJournal> loaded = load_journal(path);
  ASSERT_FALSE(loaded.is_ok());
  EXPECT_NE(loaded.status().message().find("final verdict"), std::string::npos);
  std::remove(path.c_str());
}

TEST(JournalTest, RejectsOutOfRangeItemIndex) {
  const std::string path = temp_path("journal_range.jsonl");
  const std::string full = make_journal(path);
  // Index 99 with 5 items in the header, followed by a valid record.
  write_file(path, full + serialize_record({99, 1, JournalRecord::Kind::kOk, "x"}) +
                       serialize_record({3, 1, JournalRecord::Kind::kOk, "x"}));
  const Expected<LoadedJournal> loaded = load_journal(path);
  ASSERT_FALSE(loaded.is_ok());
  EXPECT_NE(loaded.status().message().find("out of range"), std::string::npos);
  std::remove(path.c_str());
}

TEST(JournalTest, RejectsMissingOrForeignHeader) {
  const std::string path = temp_path("journal_header.jsonl");
  write_file(path, "not json at all\n");
  EXPECT_FALSE(load_journal(path).is_ok());
  write_file(path, "{\"some\":\"other format\"}\n");
  const Expected<LoadedJournal> foreign = load_journal(path);
  ASSERT_FALSE(foreign.is_ok());
  EXPECT_NE(foreign.status().message().find("not an rbs journal"), std::string::npos);
  write_file(path, "");
  EXPECT_FALSE(load_journal(path).is_ok());
  std::remove(path.c_str());
  EXPECT_FALSE(load_journal(path).is_ok());  // missing file
}

TEST(JournalTest, CreateReplacesExistingJournal) {
  const std::string path = temp_path("journal_replace.jsonl");
  make_journal(path);
  {
    auto writer = JournalWriter::create(path, {7, 2, "fresh"});
    ASSERT_TRUE(writer.is_ok());
  }
  const Expected<LoadedJournal> loaded = load_journal(path);
  ASSERT_TRUE(loaded.is_ok()) << loaded.status().message();
  EXPECT_EQ(loaded.value().header.seed, 7u);
  EXPECT_EQ(loaded.value().records.size(), 0u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace rbs::campaign

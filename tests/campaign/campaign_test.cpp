// Tests for the parallel campaign engine (campaign/{pool,runner}.hpp): the
// determinism contract (--jobs N output is byte-identical to --jobs 1), the
// per-item RNG stream derivation, result gathering in input order, and the
// deterministic lowest-index exception rethrow.
#include "campaign/runner.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <stdexcept>
#include <string>
#include <vector>

#include "campaign/pool.hpp"
#include "gen/paper_examples.hpp"
#include "gen/taskgen.hpp"

namespace rbs::campaign {
namespace {

TEST(ItemSeedTest, DeterministicAndPerItem) {
  EXPECT_EQ(item_seed(1, 0), item_seed(1, 0));
  EXPECT_NE(item_seed(1, 0), item_seed(1, 1));
  EXPECT_NE(item_seed(1, 0), item_seed(2, 0));
  // Neighbouring items and seeds must not collide over a modest range.
  for (std::uint64_t i = 0; i < 64; ++i)
    for (std::uint64_t j = i + 1; j < 64; ++j) EXPECT_NE(item_seed(7, i), item_seed(7, j));
}

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i)
    pool.submit([&counter] { counter.fetch_add(1, std::memory_order_relaxed); });
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitIdleIsReusable) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 10; ++i)
      pool.submit([&counter] { counter.fetch_add(1, std::memory_order_relaxed); });
    pool.wait_idle();
    EXPECT_EQ(counter.load(), 10 * (round + 1));
  }
}

TEST(CampaignRunnerTest, SerialRunnerNeedsNoPool) {
  CampaignOptions options;
  options.jobs = 1;
  const CampaignRunner runner(options);
  EXPECT_EQ(runner.jobs(), 1u);
}

TEST(CampaignRunnerTest, JobsZeroResolvesToHardware) {
  CampaignOptions options;
  options.jobs = 0;
  const CampaignRunner runner(options);
  EXPECT_GE(runner.jobs(), 1u);
}

TEST(CampaignRunnerTest, MapGathersInInputOrder) {
  CampaignOptions options;
  options.jobs = 8;
  const CampaignRunner runner(options);
  const std::vector<std::size_t> indices =
      runner.map<std::size_t>(257, [](std::size_t i, Rng&) { return i; });
  ASSERT_EQ(indices.size(), 257u);
  for (std::size_t i = 0; i < indices.size(); ++i) EXPECT_EQ(indices[i], i);
}

/// The bench_perf campaign workload in miniature: generate a random set from
/// the item's private stream, run one fused facade sweep, format a row. Any
/// schedule-dependence (shared RNG state, gather races) shows up as a
/// byte-level diff between worker counts.
std::string campaign_row(std::size_t index, const Analyzer& analyzer, Rng& rng) {
  GenParams params;
  params.u_bound = 0.5 + 0.1 * static_cast<double>(index % 4);
  const auto skeleton = generate_task_set(params, rng);
  if (!skeleton) return std::to_string(index) + ",skipped";
  const AnalysisReport r =
      analyzer
          .analyze(skeleton->materialize(0.5, 2.0), 2.0,
                   {.speedup = true, .reset = true, .lo = false})
          .value();
  char buffer[128];
  std::snprintf(buffer, sizeof buffer, "%zu,%.17g,%.17g,%zu", index, r.s_min, r.delta_r,
                r.fused_breakpoints);
  return buffer;
}

TEST(CampaignRunnerTest, FiveHundredSetCampaignIsWorkerCountInvariant) {
  constexpr std::size_t kSets = 500;
  constexpr std::uint64_t kSeed = 42;
  std::vector<std::vector<std::string>> outputs;
  for (unsigned jobs : {1u, 8u}) {
    CampaignOptions options;
    options.jobs = jobs;
    options.seed = kSeed;
    const CampaignRunner runner(options);
    const Analyzer analyzer;
    outputs.push_back(runner.map<std::string>(kSets, [&analyzer](std::size_t i, Rng& rng) {
      return campaign_row(i, analyzer, rng);
    }));
  }
  ASSERT_EQ(outputs[0].size(), kSets);
  ASSERT_EQ(outputs[1].size(), kSets);
  for (std::size_t i = 0; i < kSets; ++i) {
    EXPECT_EQ(outputs[0][i], outputs[1][i]) << "item " << i;
  }
}

TEST(CampaignRunnerTest, LowestIndexExceptionWinsDeterministically) {
  CampaignOptions options;
  options.jobs = 4;
  const CampaignRunner runner(options);
  for (int attempt = 0; attempt < 3; ++attempt) {
    try {
      runner.for_each(400, [](std::size_t i, Rng&) {
        if (i == 42 || i == 137 || i == 399) throw std::runtime_error(std::to_string(i));
      });
      FAIL() << "expected the campaign to rethrow";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "42");
    }
  }
}

TEST(CampaignRunnerTest, AnalyzeAllKeepsOrderAndErrorSlots) {
  std::vector<AnalysisRequest> requests;
  requests.push_back({table1_base(), 2.0, 1.0, {}, {}});
  requests.push_back({table1_base(), 0.0, 1.0, {}, {}});  // invalid: reset at 0
  requests.push_back({table1_degraded(), 2.0, 1.0, {}, {}});

  CampaignOptions options;
  options.jobs = 4;
  const std::vector<Expected<AnalysisReport>> reports =
      CampaignRunner(options).analyze_all(requests);
  ASSERT_EQ(reports.size(), 3u);
  ASSERT_TRUE(reports[0].is_ok());
  EXPECT_NEAR(reports[0].value().s_min, 4.0 / 3.0, 1e-12);
  EXPECT_FALSE(reports[1].is_ok());
  ASSERT_TRUE(reports[2].is_ok());
  EXPECT_NEAR(reports[2].value().s_min, 12.0 / 13.0, 1e-12);
}

}  // namespace
}  // namespace rbs::campaign

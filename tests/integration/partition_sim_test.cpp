// Integration: partitioned multicore deployment executed per core.
//
// After partition_first_fit splits a workload under per-core budgets, each
// core runs the paper's protocol independently; simulating every core must
// confirm zero misses and bounded dwells on all of them simultaneously.
#include <gtest/gtest.h>

#include <cmath>

#include "core/partition.hpp"
#include "core/reset.hpp"
#include "core/speedup.hpp"
#include "core/tuning.hpp"
#include "gen/rng.hpp"
#include "gen/taskgen.hpp"
#include "sim/simulator.hpp"

namespace rbs {
namespace {

class PartitionSimTest : public testing::TestWithParam<int> {};

TEST_P(PartitionSimTest, EveryCoreExecutesCleanly) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  GenParams params;
  params.u_bound = 0.9;  // needs more than one core at modest speedup
  params.period_min = 20;
  params.period_max = 800;
  const auto skeleton = generate_task_set(params, rng);
  if (!skeleton) GTEST_SKIP();
  const MinXResult mx = utilization_min_x(*skeleton);
  if (!mx.feasible) GTEST_SKIP();
  const TaskSet set = skeleton->materialize(mx.x, 2.0);

  PartitionOptions options;
  options.hi_speedup = 1.4;
  const auto cores = cores_needed(set, 6, options);
  if (!cores) GTEST_SKIP();
  const PartitionResult partition = partition_first_fit(set, *cores, options);
  ASSERT_TRUE(partition.feasible);

  for (std::size_t c = 0; c < partition.assignment.size(); ++c) {
    if (partition.assignment[c].empty()) continue;
    std::vector<McTask> tasks;
    for (std::size_t idx : partition.assignment[c]) tasks.push_back(set[idx]);
    const TaskSet core(tasks);
    const double delta_r = resetting_time_value(core, options.hi_speedup);

    sim::SimConfig cfg;
    cfg.horizon = 20000.0;
    cfg.hi_speed = options.hi_speedup;
    cfg.demand.overrun_probability = 0.5;
    cfg.release_jitter = 0.2;
    cfg.seed = static_cast<std::uint64_t>(GetParam()) * 101 + c;
    const sim::SimResult r = sim::simulate(core, cfg);
    EXPECT_FALSE(r.deadline_missed()) << "core " << c;
    if (std::isfinite(delta_r))
      for (double dwell : r.hi_dwell_times) EXPECT_LE(dwell, delta_r + 1e-6) << "core " << c;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PartitionSimTest, testing::Values(1, 2, 3, 4, 5, 6));

}  // namespace
}  // namespace rbs

// Integration tests: the analytic bounds of Sections III-IV must hold on
// executed schedules, across random workloads and the FMS model.
//
//   * With HI-mode speedup s >= s_min (Theorem 2), no deadline may be missed
//     under any release pattern and any overrun pattern.
//   * Every observed HI-mode dwell (switch -> idle reset) must be at most the
//     analytic resetting time Delta_R(s) (Corollary 5).
#include <gtest/gtest.h>

#include <cmath>

#include "core/edf.hpp"
#include "core/reset.hpp"
#include "core/speedup.hpp"
#include "core/tuning.hpp"
#include "gen/fms.hpp"
#include "gen/paper_examples.hpp"
#include "gen/rng.hpp"
#include "gen/taskgen.hpp"
#include "sim/simulator.hpp"

namespace rbs {
namespace {

struct Scenario {
  std::uint64_t seed;
  double u_bound;
  double jitter;
  double overrun_probability;
};

std::string scenario_name(const testing::TestParamInfo<Scenario>& info) {
  const Scenario& s = info.param;
  return "seed" + std::to_string(s.seed) + "_u" +
         std::to_string(static_cast<int>(s.u_bound * 100)) + "_j" +
         std::to_string(static_cast<int>(s.jitter * 100)) + "_p" +
         std::to_string(static_cast<int>(s.overrun_probability * 100));
}

class AnalysisSimTest : public testing::TestWithParam<Scenario> {};

TEST_P(AnalysisSimTest, BoundsHoldOnExecutedSchedules) {
  const Scenario& sc = GetParam();
  Rng rng(sc.seed);

  GenParams params;
  params.u_bound = sc.u_bound;
  params.period_min = 10;
  params.period_max = 400;  // keep horizons cheap
  const auto skeleton = generate_task_set(params, rng);
  if (!skeleton) GTEST_SKIP() << "generator missed the acceptance window";

  const MinXResult mx = min_x_for_lo(*skeleton);
  if (!mx.feasible) GTEST_SKIP() << "not LO-mode schedulable";
  const TaskSet set = skeleton->materialize(mx.x, 2.0);
  ASSERT_TRUE(lo_mode_schedulable(set));

  const SpeedupResult sr = min_speedup(set);
  ASSERT_TRUE(std::isfinite(sr.s_min));
  // Essentially s_min; nudged above the HI-mode utilization so Delta_R stays
  // finite and its breakpoint walk cheap (s_min can equal U_HI exactly).
  const double s =
      std::max({sr.s_min + 1e-9, set.total_utilization(Mode::HI) + 0.02, 0.05});

  const ResetResult reset = resetting_time(set, s);
  ASSERT_TRUE(std::isfinite(reset.delta_r));

  sim::SimConfig cfg;
  cfg.horizon = 30000.0;
  cfg.hi_speed = s;
  cfg.demand.overrun_probability = sc.overrun_probability;
  cfg.demand.overrun_shape = sim::DemandModel::OverrunShape::kFull;
  cfg.demand.base_fraction_min = 0.7;
  cfg.release_jitter = sc.jitter;
  cfg.initial_offset_spread = sc.jitter > 0 ? 1.0 : 0.0;
  cfg.seed = sc.seed * 7919 + 13;
  const sim::SimResult r = sim::simulate(set, cfg);

  EXPECT_FALSE(r.deadline_missed())
      << "s_min=" << sr.s_min << " misses=" << r.misses.size() << " first task "
      << (r.misses.empty() ? -1 : static_cast<int>(r.misses[0].task_index));
  for (double dwell : r.hi_dwell_times)
    EXPECT_LE(dwell, reset.delta_r + 1e-6) << "dwell exceeds Delta_R=" << reset.delta_r;
  if (sc.overrun_probability > 0.0) EXPECT_GT(r.mode_switches, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    RandomWorkloads, AnalysisSimTest,
    testing::Values(Scenario{1, 0.4, 0.0, 1.0}, Scenario{2, 0.4, 0.3, 0.5},
                    Scenario{3, 0.5, 0.0, 1.0}, Scenario{4, 0.5, 0.1, 0.3},
                    Scenario{5, 0.6, 0.0, 0.8}, Scenario{6, 0.6, 0.5, 0.5},
                    Scenario{7, 0.7, 0.0, 1.0}, Scenario{8, 0.7, 0.2, 0.7},
                    Scenario{9, 0.8, 0.0, 0.4}, Scenario{10, 0.8, 0.1, 1.0},
                    Scenario{11, 0.45, 0.05, 0.9}, Scenario{12, 0.55, 0.0, 0.6},
                    Scenario{13, 0.65, 0.4, 1.0}, Scenario{14, 0.75, 0.0, 0.2},
                    Scenario{15, 0.85, 0.05, 0.9}, Scenario{16, 0.35, 0.0, 1.0}),
    scenario_name);

class TerminationSimTest : public testing::TestWithParam<Scenario> {};

TEST_P(TerminationSimTest, BoundsHoldWithLoTaskTermination) {
  const Scenario& sc = GetParam();
  Rng rng(sc.seed + 1000);

  GenParams params;
  params.u_bound = sc.u_bound;
  params.period_min = 10;
  params.period_max = 400;
  const auto skeleton = generate_task_set(params, rng);
  if (!skeleton) GTEST_SKIP();
  const MinXResult mx = min_x_for_lo(*skeleton);
  if (!mx.feasible) GTEST_SKIP();
  const TaskSet set = skeleton->materialize_terminating(mx.x);

  const SpeedupResult sr = min_speedup(set);
  const double s =
      std::max({sr.s_min + 1e-9, set.total_utilization(Mode::HI) + 0.02, 0.2});
  const ResetResult reset = resetting_time(set, s);
  ASSERT_TRUE(std::isfinite(reset.delta_r));

  sim::SimConfig cfg;
  cfg.horizon = 30000.0;
  cfg.hi_speed = s;
  cfg.demand.overrun_probability = sc.overrun_probability;
  cfg.release_jitter = sc.jitter;
  cfg.seed = sc.seed * 31 + 7;
  const sim::SimResult r = sim::simulate(set, cfg);

  EXPECT_FALSE(r.deadline_missed());
  for (double dwell : r.hi_dwell_times) EXPECT_LE(dwell, reset.delta_r + 1e-6);
}

INSTANTIATE_TEST_SUITE_P(RandomWorkloads, TerminationSimTest,
                         testing::Values(Scenario{21, 0.5, 0.0, 1.0},
                                         Scenario{22, 0.6, 0.2, 0.6},
                                         Scenario{23, 0.7, 0.0, 1.0},
                                         Scenario{24, 0.8, 0.1, 0.8},
                                         Scenario{25, 0.9, 0.0, 1.0},
                                         Scenario{26, 0.4, 0.3, 0.5}),
                         scenario_name);

TEST(Table1SimTest, MinimumSpeedupIsTightInSimulation) {
  // At s = s_min = 4/3 the paper's example never misses...
  sim::SimConfig cfg;
  cfg.horizon = 50000.0;
  cfg.hi_speed = 4.0 / 3.0;
  cfg.demand.overrun_probability = 1.0;
  const sim::SimResult ok = sim::simulate(table1_base(), cfg);
  EXPECT_FALSE(ok.deadline_missed());

  // ...and clearly below it a miss occurs (deterministically, already with
  // synchronous periodic arrivals: after the switch at t=3, 4 work units are
  // due by the deadlines at 5 and 7 and speed 0.85 cannot deliver them).
  // Note s_min is a *sufficient* bound: speeds between the true sporadic
  // worst case and 4/3 need adversarial patterns that periodic arrivals
  // do not produce.
  sim::SimConfig bad = cfg;
  bad.hi_speed = 0.85;
  EXPECT_TRUE(sim::simulate(table1_base(), bad).deadline_missed());
}

TEST(Table1SimTest, DegradedVariantRunsAtReducedSpeed) {
  // s_min = 12/13 < 1: the degraded system tolerates a *slowdown* in HI mode.
  sim::SimConfig cfg;
  cfg.horizon = 50000.0;
  cfg.hi_speed = 12.0 / 13.0 + 1e-9;
  cfg.demand.overrun_probability = 1.0;
  const sim::SimResult r = sim::simulate(table1_degraded(), cfg);
  EXPECT_FALSE(r.deadline_missed());
  EXPECT_GT(r.mode_switches, 0u);
}

TEST(FmsSimTest, EndToEndRecoveryWithinPaperEnvelope) {
  // Fig. 5b's headline: the FMS recovers in < 3 s with a 2x speedup.
  const ImplicitSet fms = fms_task_set(2.0);
  const MinXResult mx = min_x_for_lo(fms);
  ASSERT_TRUE(mx.feasible);
  const TaskSet set = fms.materialize(mx.x, 2.0);

  const double s_min = min_speedup_value(set);
  EXPECT_LT(s_min, 2.0);
  const ResetResult reset = resetting_time(set, 2.0);
  ASSERT_TRUE(std::isfinite(reset.delta_r));
  EXPECT_LT(reset.delta_r, 3000.0);  // 3 s at 1 tick = 1 ms

  sim::SimConfig cfg;
  cfg.horizon = 120000.0;  // 2 minutes
  cfg.hi_speed = 2.0;
  cfg.demand.overrun_probability = 0.2;
  cfg.release_jitter = 0.1;
  const sim::SimResult r = sim::simulate(set, cfg);
  EXPECT_FALSE(r.deadline_missed());
  EXPECT_GT(r.mode_switches, 0u);
  for (double dwell : r.hi_dwell_times) EXPECT_LE(dwell, reset.delta_r + 1e-6);
}

}  // namespace
}  // namespace rbs

// Randomized cross-validation between independently implemented analyses:
// latency module at L = 0 vs the plain theorems, DCPL-materialised sets vs
// the generic analysis, and the shipped FMS workload file.
#include <gtest/gtest.h>

#include <cmath>
#include <fstream>

#include "cache/waymodel.hpp"
#include "core/edf.hpp"
#include "core/latency.hpp"
#include "core/reset.hpp"
#include "core/speedup.hpp"
#include "gen/rng.hpp"
#include "gen/taskgen.hpp"
#include "support/taskset_io.hpp"

namespace rbs {
namespace {

class LatencyCrossTest : public testing::TestWithParam<int> {};

TEST_P(LatencyCrossTest, ZeroLatencyMatchesPlainAnalyses) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 7000);
  GenParams params;
  params.u_bound = rng.uniform(0.4, 0.9);
  params.period_min = 10;
  params.period_max = 400;
  const auto skeleton = generate_task_set(params, rng);
  if (!skeleton) GTEST_SKIP();
  const TaskSet set = skeleton->materialize(rng.uniform(0.3, 0.8), 2.0);

  const double plain = min_speedup_value(set);
  const LatencySpeedupResult with_l0 = min_speedup_with_latency(set, 0);
  if (std::isinf(plain)) {
    EXPECT_TRUE(std::isinf(with_l0.s_min));
  } else {
    // The latency variant floors at 1 (no slow-down semantics).
    EXPECT_NEAR(with_l0.s_min, std::max(1.0, plain), 1e-9);
  }

  const double s = std::max({plain + 0.1, set.total_utilization(Mode::HI) + 0.1, 1.0});
  const double dr_plain = resetting_time_value(set, s);
  const double dr_l0 = resetting_time_with_latency(set, s, 0);
  if (std::isfinite(dr_plain)) EXPECT_NEAR(dr_l0, dr_plain, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LatencyCrossTest, testing::Range(1, 11));

class DcplCrossTest : public testing::TestWithParam<int> {};

TEST_P(DcplCrossTest, GreedyNeverWorseAndMonotoneInWays) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 9000);
  std::vector<CacheTaskSpec> specs;
  WayAllocation a_lo;
  const int ways = 12;
  for (int i = 0; i < 5; ++i) {
    const bool hi = i < 2;
    const Ticks period = rng.uniform_int(40, 400);
    const auto c_lo = std::max<Ticks>(
        1, static_cast<Ticks>(std::llround(rng.uniform(0.05, 0.15) *
                                           static_cast<double>(period))));
    const auto c_hi =
        std::min(period, static_cast<Ticks>(std::llround(2.0 * static_cast<double>(c_lo))));
    CacheTaskSpec spec;
    spec.name = "t" + std::to_string(i);
    spec.criticality = hi ? Criticality::HI : Criticality::LO;
    spec.period = period;
    spec.lo_curve = WcetCurve::exponential(c_lo, rng.uniform(0.2, 1.2), 3.0, ways);
    if (hi) spec.hi_curve = WcetCurve::exponential(c_hi, rng.uniform(0.2, 1.2), 3.0, ways);
    specs.push_back(std::move(spec));
    a_lo.push_back(2);
  }

  WayAllocation static_hi(specs.size(), 0);
  for (std::size_t i = 0; i < specs.size(); ++i)
    if (specs[i].criticality == Criticality::HI) static_hi[i] = a_lo[i];
  const double s_static = min_speedup_value(materialize_cache_set(specs, a_lo, static_hi, 0.6));

  const CachePlanResult small = greedy_hi_allocation(specs, a_lo, ways, 0.6);
  EXPECT_LE(small.s_min, s_static + 1e-12);
  EXPECT_NEAR(small.s_min, min_speedup_value(small.set), 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DcplCrossTest, testing::Range(1, 9));

TEST(ShippedWorkloadTest, FmsFileParsesAndCertifies) {
  // The test may run from the source root, build/, or build/tests/.
  std::variant<TaskSet, ParseError> parsed = ParseError{};
  for (const char* prefix : {"", "../", "../../"}) {
    parsed = read_task_set_file(std::string(prefix) + "examples/data/fms.tasks");
    if (std::holds_alternative<TaskSet>(parsed)) break;
  }
  if (!std::holds_alternative<TaskSet>(parsed))
    GTEST_SKIP() << "examples/data/fms.tasks not reachable from test cwd";
  const TaskSet& fms = std::get<TaskSet>(parsed);
  EXPECT_EQ(fms.size(), 11u);
  EXPECT_TRUE(lo_mode_schedulable(fms));
  EXPECT_LT(min_speedup_value(fms), 2.0);
  EXPECT_LT(resetting_time_value(fms, 2.0), 3000.0);  // < 3 s at 1 ms ticks
}

}  // namespace
}  // namespace rbs

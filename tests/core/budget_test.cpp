// Tests for the turbo-budget analysis and the termination fallback.
#include "core/budget.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/reset.hpp"
#include "core/speedup.hpp"
#include "gen/paper_examples.hpp"

namespace rbs {
namespace {

TEST(TerminateLoTest, DropsEveryLoTask) {
  const TaskSet term = terminate_lo_tasks(table1_degraded());
  ASSERT_EQ(term.size(), 2u);
  EXPECT_FALSE(term[0].dropped_in_hi());
  EXPECT_TRUE(term[1].dropped_in_hi());
  // LO-mode parameters are preserved.
  EXPECT_EQ(term[1].wcet(Mode::LO), 2);
  EXPECT_EQ(term[1].deadline(Mode::LO), 5);
  EXPECT_EQ(term[1].period(Mode::LO), 15);
}

TEST(TerminateLoTest, IdempotentAndHiPreserving) {
  const TaskSet once = terminate_lo_tasks(table1_base());
  const TaskSet twice = terminate_lo_tasks(once);
  EXPECT_NEAR(min_speedup_value(once), min_speedup_value(twice), 1e-12);
  EXPECT_EQ(once[0].wcet(Mode::HI), table1_base()[0].wcet(Mode::HI));
}

TEST(TurboEnvelopeTest, Table1FitsGenerousEnvelope) {
  TurboEnvelope env;
  env.max_speedup = 2.0;
  env.max_boost_ticks = 10.0;  // Delta_R(2) = 6
  const TurboReport r = check_turbo_envelope(table1_base(), env);
  EXPECT_TRUE(r.speed_ok);
  EXPECT_NEAR(r.delta_r, 6.0, 1e-9);
  EXPECT_TRUE(r.duration_ok);
  EXPECT_TRUE(r.admissible);
}

TEST(TurboEnvelopeTest, SpeedCeilingBelowSminRejected) {
  TurboEnvelope env;
  env.max_speedup = 1.2;  // below s_min = 4/3
  env.max_boost_ticks = 100.0;
  const TurboReport r = check_turbo_envelope(table1_base(), env);
  EXPECT_FALSE(r.speed_ok);
  EXPECT_FALSE(r.admissible);
}

TEST(TurboEnvelopeTest, ShortBudgetRescuedByFallback) {
  TurboEnvelope env;
  env.max_speedup = 2.0;
  env.max_boost_ticks = 1.0;  // shorter than Delta_R(2) = 6
  const TurboReport r = check_turbo_envelope(table1_base(), env);
  EXPECT_FALSE(r.duration_ok);
  // Terminating tau2 leaves only tau1 with s_min = 5/6 <= 1: safe fallback.
  EXPECT_TRUE(r.fallback_safe);
  EXPECT_TRUE(r.admissible);
}

TEST(TurboEnvelopeTest, NoFallbackWhenHiTasksAloneNeedSpeedup) {
  // Two dense HI tasks: even with every LO task dropped, s_min > 1.
  const TaskSet set({McTask::hi("a", 2, 4, 2, 4, 4), McTask::hi("b", 2, 4, 2, 4, 4)});
  TurboEnvelope env;
  env.max_speedup = 3.0;
  env.max_boost_ticks = 0.5;  // unrealistically short
  const TurboReport r = check_turbo_envelope(set, env);
  EXPECT_TRUE(r.speed_ok);
  EXPECT_FALSE(r.duration_ok);
  EXPECT_FALSE(r.fallback_safe);
  EXPECT_FALSE(r.admissible);
}

TEST(TurboEnvelopeTest, DutyCycleBound) {
  TurboEnvelope env;
  env.max_speedup = 2.0;
  env.max_boost_ticks = 10.0;
  env.min_overrun_separation = 60.0;  // T_O
  const TurboReport r = check_turbo_envelope(table1_base(), env);
  EXPECT_NEAR(r.duty_cycle, 6.0 / 60.0, 1e-9);
}

TEST(TurboEnvelopeTest, DutyCycleNaNWithoutSeparationAssumption) {
  TurboEnvelope env;
  env.max_speedup = 2.0;
  env.max_boost_ticks = 10.0;
  const TurboReport r = check_turbo_envelope(table1_base(), env);
  EXPECT_TRUE(std::isnan(r.duty_cycle));
}

TEST(TurboEnvelopeTest, DutyCycleNaNWhenResetExceedsSeparation) {
  TurboEnvelope env;
  env.max_speedup = 2.0;
  env.max_boost_ticks = 10.0;
  env.min_overrun_separation = 3.0;  // < Delta_R: the 1/T_O argument fails
  const TurboReport r = check_turbo_envelope(table1_base(), env);
  EXPECT_TRUE(std::isnan(r.duty_cycle));
}

}  // namespace
}  // namespace rbs

// Unit tests for the arrived demand bound (Theorem 4, Eqs. 9-10).
//
// Same running example as dbf_test:
//   tau1 = HI task, C=(2,4), D=(5,10), T=10   => gap = T - D(LO) = 5
//   tau2 = LO task, C=3,     D=T=12           => gap = 12 - 12 = 0... no:
//   gap = T(HI) - D(LO) = 12 - 12 = 0, so the ramp starts immediately.
#include "core/adb.hpp"

#include <gtest/gtest.h>

#include "core/dbf.hpp"

namespace rbs {
namespace {

McTask tau1() { return McTask::hi("tau1", 2, 4, 5, 10, 10); }
McTask tau2() { return McTask::lo("tau2", 3, 12, 12); }

TEST(AdbTest, HiTaskGoldenValues) {
  const McTask t = tau1();  // gap = 10 - 5 = 5
  // (q+1)*C(HI) term plus the carry-over ramp r(w').
  EXPECT_EQ(adb_hi(t, 0), 4);    // one full future job counted immediately
  EXPECT_EQ(adb_hi(t, 4), 4);    // w' = -1
  EXPECT_EQ(adb_hi(t, 5), 6);    // w' = 0: jump by C(HI)-C(LO)
  EXPECT_EQ(adb_hi(t, 6), 7);    // ramp
  EXPECT_EQ(adb_hi(t, 7), 8);    // saturated
  EXPECT_EQ(adb_hi(t, 9), 8);
  EXPECT_EQ(adb_hi(t, 10), 8);   // q jumps, ramp resets
  EXPECT_EQ(adb_hi(t, 15), 10);
  EXPECT_EQ(adb_hi(t, 17), 12);
}

TEST(AdbTest, LoTaskGoldenValues) {
  const McTask t = tau2();  // gap = 0: ramp starts at every window boundary
  EXPECT_EQ(adb_hi(t, 0), 3);
  EXPECT_EQ(adb_hi(t, 1), 4);
  EXPECT_EQ(adb_hi(t, 3), 6);
  EXPECT_EQ(adb_hi(t, 4), 6);
  EXPECT_EQ(adb_hi(t, 12), 6);   // q=1, rho=0: 2*C + r(0)=0
  EXPECT_EQ(adb_hi(t, 13), 7);
}

TEST(AdbTest, AdbDominatesDbfHi) {
  // Arrived demand counts one more job than deadline-bounded demand; for the
  // implicit normal form ADB = DBF_HI + C(HI) exactly, in general >=.
  const TaskSet set({tau1(), tau2()});
  for (const McTask& t : set)
    for (Ticks d = 0; d <= 200; ++d) EXPECT_GE(adb_hi(t, d), dbf_hi(t, d)) << "delta=" << d;
}

TEST(AdbTest, DroppedTaskContributesItsCarryOverOnly) {
  const McTask t = McTask::lo_terminated("tau2", 3, 12, 12);
  for (Ticks d : {0, 1, 50, 5000}) {
    EXPECT_EQ(adb_hi(t, d), 3);
    EXPECT_EQ(adb_hi(t, d, /*discard_dropped_carryover=*/true), 0);
  }
}

TEST(AdbTest, PeriodicityShiftProperty) {
  const McTask a = tau1();
  const McTask b = McTask::lo("l", 3, 12, 12, 15, 20);
  for (Ticks d = 0; d <= 150; ++d) {
    EXPECT_EQ(adb_hi(a, d + 10), adb_hi(a, d) + 4);
    EXPECT_EQ(adb_hi(b, d + 20), adb_hi(b, d) + 3);
  }
}

TEST(AdbTest, MonotoneNonDecreasing) {
  for (const McTask& t : {tau1(), tau2(), McTask::lo("l", 3, 12, 12, 15, 20)}) {
    Ticks prev = 0;
    for (Ticks d = 0; d <= 300; ++d) {
      const Ticks v = adb_hi(t, d);
      EXPECT_GE(v, prev) << describe(t) << " delta=" << d;
      prev = v;
    }
  }
}

TEST(AdbTest, LeftLimitNeverExceedsValue) {
  for (const McTask& t : {tau1(), tau2()})
    for (Ticks d = 1; d <= 200; ++d)
      EXPECT_LE(adb_hi_left(t, d), adb_hi(t, d)) << describe(t) << " delta=" << d;
}

TEST(AdbTest, LeftLimitAtWindowBoundaryKeepsOldWindow) {
  const McTask t = tau1();
  // Approaching 10 from the left: q=0, rho->10, w'=5 saturated: 4 + 4 = 8;
  // the right value is also 8 (continuous here because the ramp was full).
  EXPECT_EQ(adb_hi_left(t, 10), 8);
  EXPECT_EQ(adb_hi(t, 10), 8);
  // At the jump of the carry-over residual (w'=0), the left limit is lower.
  EXPECT_EQ(adb_hi_left(t, 5), 4);
  EXPECT_EQ(adb_hi(t, 5), 6);
}

TEST(AdbTest, TotalsSumOverTasks) {
  const TaskSet set({tau1(), tau2()});
  for (Ticks d = 0; d <= 60; ++d)
    EXPECT_EQ(adb_hi_total(set, d), adb_hi(tau1(), d) + adb_hi(tau2(), d));
}

TEST(AdbTest, ImplicitNormalFormIdentity) {
  // For tasks in the Section V normal form, gap == g and thus
  // ADB(delta) == DBF_HI(delta) + C(HI) -- the identity behind Lemma 7.
  const McTask hi = McTask::hi("h", 2, 4, 6, 10, 10);       // D(HI)=T
  const McTask lo = McTask::lo("l", 3, 10, 10, 20, 20);     // T(chi)=D(chi)
  for (const McTask& t : {hi, lo})
    for (Ticks d = 0; d <= 200; ++d)
      EXPECT_EQ(adb_hi(t, d), dbf_hi(t, d) + t.wcet(Mode::HI)) << describe(t) << " d=" << d;
}

TEST(AdbTest, BreakpointsEmptyForDroppedTask) {
  EXPECT_TRUE(adb_hi_breakpoints(McTask::lo_terminated("l", 3, 12, 12)).empty());
  EXPECT_FALSE(adb_hi_breakpoints(tau1()).empty());
}

}  // namespace
}  // namespace rbs

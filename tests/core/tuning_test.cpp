// Tests for design-parameter tuning (min-x search and greedy per-task
// deadline tightening).
#include "core/tuning.hpp"

#include <gtest/gtest.h>

#include "core/edf.hpp"
#include "core/speedup.hpp"
#include "gen/fms.hpp"
#include "gen/paper_examples.hpp"
#include "gen/rng.hpp"
#include "gen/taskgen.hpp"

namespace rbs {
namespace {

ImplicitSet light_set() {
  return ImplicitSet({
      {"h", Criticality::HI, 20, 4, 8},
      {"l", Criticality::LO, 25, 5, 5},
  });
}

TEST(MinXTest, FeasibleSetHasFeasibleResult) {
  const MinXResult r = min_x_for_lo(light_set());
  ASSERT_TRUE(r.feasible);
  EXPECT_GT(r.x, 0.0);
  EXPECT_LE(r.x, 1.0);
}

TEST(MinXTest, ResultIsLoSchedulableAndNearMinimal) {
  const ImplicitSet skel = light_set();
  const MinXResult r = min_x_for_lo(skel, 1e-5);
  ASSERT_TRUE(r.feasible);
  EXPECT_TRUE(lo_mode_schedulable(skel.materialize(r.x, 1.0)));
  // A slightly smaller x must flip the verdict or hit the same materialised
  // deadlines (integer rounding can make nearby x equivalent).
  const TaskSet below = skel.materialize(std::max(1e-6, r.x - 0.05), 1.0);
  const TaskSet at = skel.materialize(r.x, 1.0);
  if (below[0].deadline(Mode::LO) != at[0].deadline(Mode::LO))
    EXPECT_FALSE(lo_mode_schedulable(below));
}

TEST(MinXTest, InfeasibleSetDetected) {
  // LO-mode utilization > 1: no x helps.
  const ImplicitSet skel({
      {"h", Criticality::HI, 10, 6, 8},
      {"l", Criticality::LO, 10, 6, 6},
  });
  EXPECT_FALSE(min_x_for_lo(skel).feasible);
}

TEST(MinXTest, LowerUtilizationAllowsSmallerX) {
  const ImplicitSet light = light_set();
  const ImplicitSet heavy({
      {"h", Criticality::HI, 20, 9, 16},
      {"l", Criticality::LO, 25, 12, 12},
  });
  const MinXResult rl = min_x_for_lo(light);
  const MinXResult rh = min_x_for_lo(heavy);
  ASSERT_TRUE(rl.feasible);
  ASSERT_TRUE(rh.feasible);
  EXPECT_LT(rl.x, rh.x);
}

TEST(MinXTest, SmallerXReducesRequiredSpeedup) {
  // The whole point of overrun preparation (Fig. 4a trend, exact analysis).
  const ImplicitSet skel = light_set();
  const MinXResult r = min_x_for_lo(skel);
  ASSERT_TRUE(r.feasible);
  const double s_min_at_min_x = min_speedup_value(skel.materialize(r.x, 2.0));
  const double s_min_at_one = min_speedup_value(skel.materialize(1.0, 2.0));
  EXPECT_LE(s_min_at_min_x, s_min_at_one + 1e-12);
}

TEST(MinXTest, FmsModelIsFeasible) {
  const MinXResult r = min_x_for_lo(fms_task_set(2.0));
  ASSERT_TRUE(r.feasible);
  EXPECT_LT(r.x, 1.0);
}

TEST(TightenTest, NeverWorseThanInput) {
  const TaskSet start = light_set().materialize(1.0, 2.0);
  const TightenResult r = tighten_lo_deadlines(start);
  EXPECT_LE(r.s_min, min_speedup_value(start) + 1e-12);
  EXPECT_TRUE(lo_mode_schedulable(r.set));
}

TEST(TightenTest, ReportedSpeedupMatchesReturnedSet) {
  const TaskSet start = light_set().materialize(0.9, 1.5);
  const TightenResult r = tighten_lo_deadlines(start);
  EXPECT_NEAR(r.s_min, min_speedup_value(r.set), 1e-12);
}

TEST(TightenTest, OnlyHiTaskLoDeadlinesChange) {
  const TaskSet start = light_set().materialize(1.0, 2.0);
  const TightenResult r = tighten_lo_deadlines(start);
  ASSERT_EQ(r.set.size(), start.size());
  for (std::size_t i = 0; i < start.size(); ++i) {
    EXPECT_EQ(r.set[i].deadline(Mode::HI), start[i].deadline(Mode::HI));
    EXPECT_EQ(r.set[i].period(Mode::LO), start[i].period(Mode::LO));
    if (!start[i].is_hi())
      EXPECT_EQ(r.set[i].deadline(Mode::LO), start[i].deadline(Mode::LO));
  }
}

TEST(TightenTest, RefiningCommonFactorNeverLoses) {
  // Seeding the per-task greedy with the best common-x solution can only
  // improve it (the greedy never accepts a worse set), and from a cold start
  // it must land in the same ballpark.
  Rng rng(5);
  GenParams params;
  params.u_bound = 0.5;
  int tested = 0;
  for (int trial = 0; trial < 20 && tested < 8; ++trial) {
    const auto skeleton = generate_task_set(params, rng);
    if (!skeleton) continue;
    const MinXResult mx = min_x_for_lo(*skeleton);
    if (!mx.feasible) continue;
    ++tested;
    const TaskSet common = skeleton->materialize(mx.x, 2.0);
    const double s_common = min_speedup_value(common);
    const TightenResult refined = tighten_lo_deadlines(common);
    EXPECT_LE(refined.s_min, s_common + 1e-9) << "trial " << trial;
    const TightenResult cold = tighten_lo_deadlines(skeleton->materialize(1.0, 2.0));
    EXPECT_LE(cold.s_min, s_common * 1.35 + 1e-9) << "trial " << trial;
  }
  EXPECT_GT(tested, 0);
}

TEST(MinYTest, OneWhenNoDegradationNeeded) {
  // Plenty of headroom: even y = 1 fits a generous speedup.
  const auto y = min_y_for_speedup(light_set(), 0.5, 3.0);
  ASSERT_TRUE(y.has_value());
  EXPECT_DOUBLE_EQ(*y, 1.0);
}

TEST(MinYTest, BisectionFindsThreshold) {
  const ImplicitSet skel = light_set();
  const double x = 0.5;
  // Target between s_min at y=1 and at termination so a threshold exists.
  const double s_at_1 = min_speedup_value(skel.materialize(x, 1.0));
  const double s_term = min_speedup_value(skel.materialize_terminating(x));
  const double target = 0.5 * (s_at_1 + s_term);
  const auto y = min_y_for_speedup(skel, x, target, 1e-4);
  ASSERT_TRUE(y.has_value());
  EXPECT_GT(*y, 1.0);
  // Feasible at the reported y, infeasible a notch below.
  EXPECT_LE(min_speedup_value(skel.materialize(x, *y)), target + 1e-9);
  if (*y > 1.02)
    EXPECT_GT(min_speedup_value(skel.materialize(x, *y - 0.02)), target - 1e-9);
}

TEST(MinYTest, InfeasibleWhenTerminationIsNotEnough) {
  // Dense HI tasks: dropping LO tasks cannot reach a tiny speedup target.
  const ImplicitSet skel({
      {"h", Criticality::HI, 10, 3, 9},
      {"l", Criticality::LO, 10, 2, 2},
  });
  EXPECT_FALSE(min_y_for_speedup(skel, 0.5, 0.3).has_value());
}

TEST(MinYTest, MonotoneInTarget) {
  const ImplicitSet skel = light_set();
  const auto y_tight = min_y_for_speedup(skel, 0.5, 0.9);
  const auto y_loose = min_y_for_speedup(skel, 0.5, 1.4);
  if (y_tight && y_loose) EXPECT_GE(*y_tight + 1e-9, *y_loose);
}

TEST(DegradeTest, ReachesTargetOnTable1) {
  // Base Table I needs 4/3; stretching tau2's HI service must reach s <= 1
  // (the paper's degraded variant achieves 12/13).
  const DegradeResult r = degrade_lo_services(table1_base(), 1.0);
  EXPECT_TRUE(r.feasible);
  EXPECT_LE(r.s_min, 1.0 + 1e-12);
  EXPECT_GT(r.total_stretch, 0.0);
  EXPECT_TRUE(lo_mode_schedulable(r.set));
  // Only LO-task HI-mode parameters changed.
  EXPECT_EQ(r.set[0].deadline(Mode::LO), 4);
  EXPECT_EQ(r.set[1].period(Mode::LO), 15);
  EXPECT_GE(r.set[1].period(Mode::HI), 15);
}

TEST(DegradeTest, AlreadyFeasibleIsIdentity) {
  const DegradeResult r = degrade_lo_services(table1_base(), 2.0);
  EXPECT_TRUE(r.feasible);
  EXPECT_DOUBLE_EQ(r.total_stretch, 0.0);
  EXPECT_NEAR(r.s_min, 4.0 / 3.0, 1e-12);
}

TEST(DegradeTest, HiOnlyDemandCannotBeDegradedAway) {
  // The HI task alone already needs > target: no LO stretch can help.
  const TaskSet set({McTask::hi("h", 3, 5, 4, 7, 7), McTask::lo("l", 2, 15, 15)});
  const double hi_only = min_speedup_value(TaskSet({McTask::hi("h", 3, 5, 4, 7, 7)}));
  const DegradeResult r = degrade_lo_services(set, hi_only * 0.5);
  EXPECT_FALSE(r.feasible);
}

TEST(DegradeTest, ReportedSpeedupMatchesSet) {
  const DegradeResult r = degrade_lo_services(table1_base(), 1.0);
  EXPECT_NEAR(r.s_min, min_speedup_value(r.set), 1e-12);
}

TEST(TightenTest, InfeasibleLoModeReturnsUnchanged) {
  const TaskSet bad({McTask::lo("a", 6, 10, 10), McTask::lo("b", 6, 10, 10)});
  const TightenResult r = tighten_lo_deadlines(bad);
  EXPECT_EQ(r.iterations, 0);
}

}  // namespace
}  // namespace rbs

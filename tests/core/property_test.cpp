// Property-based tests: structural invariants of the analyses, checked over
// exhaustive small-parameter families and randomized workloads.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "core/adb.hpp"
#include "core/dbf.hpp"
#include "core/reset.hpp"
#include "core/speedup.hpp"
#include "gen/rng.hpp"
#include "gen/taskgen.hpp"

namespace rbs {
namespace {

// Brute-force supremum of total DBF_HI(delta)/delta over integer points and
// left limits up to `bound` -- a lower witness of s_min.
double brute_ratio_max(const TaskSet& set, Ticks bound) {
  double best = 0.0;
  for (Ticks d = 1; d <= bound; ++d) {
    best = std::max(best, static_cast<double>(dbf_hi_total(set, d)) / static_cast<double>(d));
    best = std::max(best,
                    static_cast<double>(dbf_hi_total_left(set, d)) / static_cast<double>(d));
  }
  return best;
}

// ---- exhaustive single-HI-task family ------------------------------------

TEST(SingleTaskFamilyTest, SpeedupMatchesBruteForce) {
  // Every HI task with T <= 8: the algorithm must agree with a brute-force
  // scan over several hyperperiods (the per-task supremum lies in (0, T]).
  int cases = 0;
  for (Ticks t = 2; t <= 8; ++t)
    for (Ticks d_hi = 1; d_hi <= t; ++d_hi)
      for (Ticks d_lo = 1; d_lo <= d_hi; ++d_lo)
        for (Ticks c_lo = 1; c_lo <= d_lo; ++c_lo)
          for (Ticks c_hi = c_lo; c_hi <= d_hi; ++c_hi) {
            const TaskSet set({McTask::hi("h", c_lo, c_hi, d_lo, d_hi, t)});
            const SpeedupResult r = min_speedup(set);
            ++cases;
            if (std::isinf(r.s_min)) {
              // Infinite iff positive demand at delta = 0.
              EXPECT_GT(dbf_hi_total(set, 0), 0);
              continue;
            }
            // When the supremum *equals* the utilization limit the search can
            // only close the gap to rel_tol; the residual must be tiny.
            if (!r.exact) ASSERT_LE(r.error_bound, 1e-6 * std::max(1.0, r.s_min));
            const double brute =
                std::max(brute_ratio_max(set, 40 * t), set.total_utilization(Mode::HI));
            EXPECT_NEAR(r.s_min, brute, r.error_bound + 1e-12)
                << "C=(" << c_lo << "," << c_hi << ") D=(" << d_lo << "," << d_hi
                << ") T=" << t;
          }
  EXPECT_GT(cases, 500);
}

TEST(SingleTaskFamilyTest, ResetSatisfiesDefinitionEverywhere) {
  for (Ticks t = 3; t <= 7; ++t)
    for (Ticks d_lo = 1; d_lo < t; ++d_lo)
      for (Ticks c_lo = 1; c_lo <= d_lo; ++c_lo)
        for (Ticks c_hi = c_lo; c_hi <= t; ++c_hi)
          for (double s : {1.1, 1.7, 2.6}) {
            const TaskSet set({McTask::hi("h", c_lo, c_hi, d_lo, t, t)});
            if (s <= set.total_utilization(Mode::HI)) continue;
            const double dr = resetting_time_value(set, s);
            ASSERT_TRUE(std::isfinite(dr));
            // Condition holds at Delta_R (linear interpolation between
            // integer breakpoints) and fails at every earlier integer.
            const auto lo = static_cast<Ticks>(std::floor(dr));
            const auto hi = static_cast<Ticks>(std::ceil(dr));
            double at;
            if (lo == hi) {
              at = static_cast<double>(adb_hi_total(set, lo));
            } else {
              const auto v0 = static_cast<double>(adb_hi_total(set, lo));
              const auto v1 = static_cast<double>(adb_hi_total_left(set, hi));
              at = v0 + (v1 - v0) * (dr - static_cast<double>(lo));
            }
            EXPECT_LE(at, s * dr + 1e-6);
            for (Ticks d = 0; d < lo; ++d)
              EXPECT_GT(static_cast<double>(adb_hi_total(set, d)),
                        s * static_cast<double>(d) - 1e-6)
                  << "C=(" << c_lo << "," << c_hi << ") D_lo=" << d_lo << " T=" << t
                  << " s=" << s << " d=" << d;
          }
}

// ---- randomized set-level invariants --------------------------------------

class SetInvariantTest : public testing::TestWithParam<int> {
 protected:
  TaskSet random_set(Rng& rng, double u) {
    GenParams params;
    params.u_bound = u;
    params.period_min = 5;
    params.period_max = 200;
    for (int attempt = 0; attempt < 50; ++attempt) {
      const auto skeleton = generate_task_set(params, rng);
      if (!skeleton) continue;
      return skeleton->materialize(rng.uniform(0.2, 0.9), rng.uniform(1.0, 3.0));
    }
    return TaskSet{};
  }
};

TEST_P(SetInvariantTest, AdbDominatesDbfPointwise) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  const TaskSet set = random_set(rng, 0.6);
  if (set.empty()) GTEST_SKIP();
  for (Ticks d = 0; d <= 500; ++d) EXPECT_GE(adb_hi_total(set, d), dbf_hi_total(set, d));
}

TEST_P(SetInvariantTest, DemandFunctionsMonotone) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 100);
  const TaskSet set = random_set(rng, 0.7);
  if (set.empty()) GTEST_SKIP();
  Ticks prev_dbf = 0, prev_adb = 0, prev_lo = 0;
  for (Ticks d = 0; d <= 500; ++d) {
    const Ticks v1 = dbf_hi_total(set, d);
    const Ticks v2 = adb_hi_total(set, d);
    const Ticks v3 = dbf_lo_total(set, d);
    EXPECT_GE(v1, prev_dbf);
    EXPECT_GE(v2, prev_adb);
    EXPECT_GE(v3, prev_lo);
    prev_dbf = v1;
    prev_adb = v2;
    prev_lo = v3;
  }
}

TEST_P(SetInvariantTest, SpeedupSubadditiveOverUnion) {
  // sup (f+g)/D <= sup f/D + sup g/D.
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 200);
  const TaskSet a = random_set(rng, 0.4);
  const TaskSet b = random_set(rng, 0.4);
  if (a.empty() || b.empty()) GTEST_SKIP();
  std::vector<McTask> merged(a.tasks());
  for (McTask t : b.tasks()) merged.push_back(std::move(t));
  const TaskSet both(std::move(merged));
  EXPECT_LE(min_speedup_value(both),
            min_speedup_value(a) + min_speedup_value(b) + 1e-9);
}

TEST_P(SetInvariantTest, SpeedupAtLeastEveryTasksOwn) {
  // Removing tasks never increases the required speedup.
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 300);
  const TaskSet set = random_set(rng, 0.6);
  if (set.size() < 2) GTEST_SKIP();
  const double s_all = min_speedup_value(set);
  for (const McTask& t : set)
    EXPECT_GE(s_all + 1e-12, min_speedup_value(TaskSet({t}))) << describe(t);
}

TEST_P(SetInvariantTest, ResetBracketedByDemandEnvelope) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 400);
  const TaskSet set = random_set(rng, 0.6);
  if (set.empty()) GTEST_SKIP();
  const double u = set.total_utilization(Mode::HI);
  const double s = u + 0.4;
  const double dr = resetting_time_value(set, s);
  ASSERT_TRUE(std::isfinite(dr));
  // Lower bound: all demand present at the switch must be served.
  EXPECT_GE(dr + 1e-9, static_cast<double>(adb_hi_total(set, 0)) / s);
  // Upper bound: ADB <= U*D + 2*sum C(HI) (+ carried LO work).
  double k = 0.0;
  for (const McTask& t : set)
    k += static_cast<double>(t.wcet(Mode::HI)) * (t.dropped_in_hi() ? 1.0 : 2.0);
  EXPECT_LE(dr, k / (s - u) + 1e-6);
}

TEST_P(SetInvariantTest, SpeedupInvariantUnderTaskPermutation) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 500);
  const TaskSet set = random_set(rng, 0.6);
  if (set.size() < 2) GTEST_SKIP();
  std::vector<McTask> reversed(set.tasks().rbegin(), set.tasks().rend());
  const TaskSet permuted(std::move(reversed));
  EXPECT_DOUBLE_EQ(min_speedup_value(set), min_speedup_value(permuted));
  EXPECT_DOUBLE_EQ(resetting_time_value(set, 2.5), resetting_time_value(permuted, 2.5));
}

INSTANTIATE_TEST_SUITE_P(Seeds, SetInvariantTest, testing::Range(1, 13));

}  // namespace
}  // namespace rbs

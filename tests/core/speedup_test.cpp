// Tests for Theorem 2 (minimum HI-mode speedup).
#include "core/speedup.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/dbf.hpp"
#include "core/edf.hpp"
#include "gen/paper_examples.hpp"
#include "gen/rng.hpp"
#include "gen/taskgen.hpp"

namespace rbs {
namespace {

// Reference implementation: scan every integer point and left limit up to a
// bound; valid lower witness of the supremum.
double brute_force_ratio_max(const TaskSet& set, Ticks up_to) {
  double best = 0.0;
  for (Ticks d = 1; d <= up_to; ++d) {
    best = std::max(best, static_cast<double>(dbf_hi_total(set, d)) / static_cast<double>(d));
    best = std::max(best,
                    static_cast<double>(dbf_hi_total_left(set, d)) / static_cast<double>(d));
  }
  return best;
}

TEST(SpeedupTest, Table1BaseIsFourThirds) {
  const SpeedupResult r = min_speedup(table1_base());
  EXPECT_TRUE(r.exact);
  EXPECT_NEAR(r.s_min, 4.0 / 3.0, 1e-12);
}

TEST(SpeedupTest, Table1DegradedAllowsSlowdown) {
  const SpeedupResult r = min_speedup(table1_degraded());
  EXPECT_TRUE(r.exact);
  EXPECT_NEAR(r.s_min, 12.0 / 13.0, 1e-12);  // the paper's ~0.92
  EXPECT_LT(r.s_min, 1.0);                   // "the system can actually slow down"
}

TEST(SpeedupTest, BothTable1VariantsAreLoSchedulable) {
  EXPECT_TRUE(lo_mode_schedulable(table1_base()));
  EXPECT_TRUE(lo_mode_schedulable(table1_degraded()));
}

TEST(SpeedupTest, EmptySetNeedsNoSpeedup) {
  EXPECT_DOUBLE_EQ(min_speedup_value(TaskSet{}), 0.0);
}

TEST(SpeedupTest, UnpreparedHiTaskNeedsInfiniteSpeedup) {
  // D(LO) == D(HI) with C(HI) > C(LO): demand at Delta=0 (see Theorem 2).
  const TaskSet set({McTask::hi("h", 2, 4, 10, 10, 10)});
  const SpeedupResult r = min_speedup(set);
  EXPECT_TRUE(std::isinf(r.s_min));
  EXPECT_EQ(r.argmax, 0);
}

TEST(SpeedupTest, AllTasksDroppedNeedsNothing) {
  const TaskSet set({McTask::lo_terminated("a", 2, 10, 10),
                     McTask::lo_terminated("b", 3, 20, 20)});
  EXPECT_DOUBLE_EQ(min_speedup_value(set), 0.0);
}

TEST(SpeedupTest, SingleHiTaskKnownValue) {
  // tau1 of Table I alone: DBF_HI peaks at delta = g + C(LO) = 3 + 3 = 6 with
  // demand C(HI) = 5, and at every later window the density only drops.
  const TaskSet set({McTask::hi("h", 3, 5, 4, 7, 7)});
  const SpeedupResult r = min_speedup(set);
  EXPECT_NEAR(r.s_min, 5.0 / 6.0, 1e-12);
  EXPECT_EQ(r.argmax, 6);
}

TEST(SpeedupTest, MatchesBruteForceOnRandomSets) {
  Rng rng(42);
  GenParams params;
  params.u_bound = 0.6;
  params.period_min = 5;
  params.period_max = 60;  // small periods so brute force is cheap
  for (int trial = 0; trial < 30; ++trial) {
    const auto skeleton = generate_task_set(params, rng);
    if (!skeleton) continue;
    const TaskSet set = skeleton->materialize(0.5, 2.0);
    const SpeedupResult r = min_speedup(set);
    ASSERT_TRUE(r.exact);
    // The brute-force scan up to a generous bound is a lower witness; if the
    // algorithm's argmax falls inside the scan it must match exactly.
    const Ticks bound = 3000;
    const double brute = brute_force_ratio_max(set, bound);
    EXPECT_GE(r.s_min + 1e-12, brute) << "trial " << trial;
    if (r.argmax > 0 && r.argmax <= bound) {
      EXPECT_NEAR(r.s_min, std::max(brute, set.total_utilization(Mode::HI)), 1e-12)
          << "trial " << trial;
    }
  }
}

TEST(SpeedupTest, NeverBelowHiModeUtilization) {
  Rng rng(7);
  GenParams params;
  params.u_bound = 0.7;
  for (int trial = 0; trial < 20; ++trial) {
    const auto skeleton = generate_task_set(params, rng);
    if (!skeleton) continue;
    const TaskSet set = skeleton->materialize(0.6, 1.5);
    EXPECT_GE(min_speedup_value(set) + 1e-12, set.total_utilization(Mode::HI));
  }
}

TEST(SpeedupTest, MorePreparationNeverIncreasesSpeedup) {
  // Monotonicity in x (Lemma 6's trend), on the exact analysis.
  const TaskSet loose({McTask::hi("h", 3, 5, 6, 7, 7), McTask::lo("l", 2, 15, 15)});
  const TaskSet tight({McTask::hi("h", 3, 5, 4, 7, 7), McTask::lo("l", 2, 15, 15)});
  EXPECT_LE(min_speedup_value(tight), min_speedup_value(loose) + 1e-12);
}

TEST(SpeedupTest, MoreDegradationNeverIncreasesSpeedup) {
  // Monotonicity in y (Lemma 6's trend), on the exact analysis.
  const TaskSet none({McTask::hi("h", 3, 5, 4, 7, 7), McTask::lo("l", 2, 15, 15)});
  const TaskSet some({McTask::hi("h", 3, 5, 4, 7, 7), McTask::lo("l", 2, 15, 15, 20, 20)});
  const TaskSet term({McTask::hi("h", 3, 5, 4, 7, 7), McTask::lo_terminated("l", 2, 15, 15)});
  const double s_none = min_speedup_value(none);
  const double s_some = min_speedup_value(some);
  const double s_term = min_speedup_value(term);
  EXPECT_LE(s_some, s_none + 1e-12);
  EXPECT_LE(s_term, s_some + 1e-12);
}

TEST(SpeedupTest, TerminationEqualsNoLoTaskForHiDemand) {
  // With LO tasks terminated, HI-mode demand comes from HI tasks alone.
  const TaskSet with_term(
      {McTask::hi("h", 3, 5, 4, 7, 7), McTask::lo_terminated("l", 2, 15, 15)});
  const TaskSet hi_only({McTask::hi("h", 3, 5, 4, 7, 7)});
  EXPECT_NEAR(min_speedup_value(with_term), min_speedup_value(hi_only), 1e-12);
}

TEST(SpeedupTest, HiModeSchedulableThresholds) {
  const TaskSet set = table1_base();
  EXPECT_TRUE(hi_mode_schedulable(set, 4.0 / 3.0));
  EXPECT_TRUE(hi_mode_schedulable(set, 2.0));
  EXPECT_FALSE(hi_mode_schedulable(set, 1.3));
}

TEST(SpeedupTest, SystemSchedulableChecksBothModes) {
  EXPECT_TRUE(system_schedulable(table1_base(), 4.0 / 3.0));
  EXPECT_FALSE(system_schedulable(table1_base(), 1.0));
  // LO-mode infeasible set: utilization > 1.
  const TaskSet overloaded({McTask::lo("a", 9, 10, 10), McTask::lo("b", 9, 10, 10)});
  EXPECT_FALSE(system_schedulable(overloaded, 10.0));
}

TEST(SpeedupTest, ScalingAllParametersLeavesSpeedupInvariant) {
  // s_min is dimensionless: scaling every tick parameter by a constant factor
  // must not change it.
  const TaskSet base = table1_base();
  std::vector<McTask> scaled_tasks;
  for (const McTask& t : base) {
    if (t.is_hi())
      scaled_tasks.push_back(McTask::hi(t.name(), t.wcet(Mode::LO) * 10,
                                        t.wcet(Mode::HI) * 10, t.deadline(Mode::LO) * 10,
                                        t.deadline(Mode::HI) * 10, t.period(Mode::LO) * 10));
    else
      scaled_tasks.push_back(McTask::lo(t.name(), t.wcet(Mode::LO) * 10,
                                        t.deadline(Mode::LO) * 10, t.period(Mode::LO) * 10,
                                        t.deadline(Mode::HI) * 10, t.period(Mode::HI) * 10));
  }
  EXPECT_NEAR(min_speedup_value(TaskSet(std::move(scaled_tasks))), min_speedup_value(base),
              1e-12);
}

TEST(SpeedupTest, ReportsArgmaxWitness) {
  const SpeedupResult r = min_speedup(table1_base());
  ASSERT_GT(r.argmax, 0);
  // The ratio at the witness (value or left limit) reproduces s_min.
  const double at = static_cast<double>(dbf_hi_total(table1_base(), r.argmax)) /
                    static_cast<double>(r.argmax);
  const double at_left = static_cast<double>(dbf_hi_total_left(table1_base(), r.argmax)) /
                         static_cast<double>(r.argmax);
  EXPECT_NEAR(std::max(at, at_left), r.s_min, 1e-12);
}

}  // namespace
}  // namespace rbs

// Tests for the degraded-guarantee analysis (core/resilience.hpp) against
// the paper's worked example: s_min = 4/3 and Delta_R(2) = 6 for Table I.
#include "core/resilience.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/reset.hpp"
#include "core/speedup.hpp"
#include "gen/paper_examples.hpp"

namespace rbs {
namespace {

TEST(AnalyzeDegradedTest, FullSpeedNeedsNoFallback) {
  const TaskSet set = table1_base();
  const DegradedGuarantee g = analyze_degraded(set, 2.0);
  EXPECT_TRUE(g.schedulable_unmodified);
  EXPECT_TRUE(g.feasible);
  EXPECT_FALSE(g.hi_mode_misses_licensed);
  EXPECT_EQ(g.fallback.tier(), 0u);
  EXPECT_NEAR(g.nominal_s_min, 4.0 / 3.0, 1e-6);
  EXPECT_NEAR(g.delta_r, 6.0, 1e-6);  // Example 2
}

TEST(AnalyzeDegradedTest, AtExactSMinStillSchedulable) {
  const TaskSet set = table1_base();
  const DegradedGuarantee g = analyze_degraded(set, min_speedup_value(set));
  EXPECT_TRUE(g.schedulable_unmodified);
  EXPECT_TRUE(std::isfinite(g.delta_r));
}

TEST(AnalyzeDegradedTest, BelowSMinLicensesMissesAndPicksFallback) {
  const TaskSet set = table1_base();
  const DegradedGuarantee g = analyze_degraded(set, 1.0);  // < 4/3
  EXPECT_FALSE(g.schedulable_unmodified);
  EXPECT_TRUE(g.hi_mode_misses_licensed);
  if (g.feasible) {
    EXPECT_GT(g.fallback.tier(), 0u);
    const Expected<TaskSet> reduced = apply_termination(set, g.fallback.terminated);
    ASSERT_TRUE(reduced.is_ok());
    EXPECT_TRUE(hi_mode_schedulable(reduced.value(), 1.0));
    EXPECT_LE(g.s_min_with_fallback, 1.0 + 1e-9);
    EXPECT_TRUE(std::isfinite(g.delta_r));
    EXPECT_NEAR(g.delta_r, degraded_resetting_time(set, 1.0, g.fallback), 1e-9);
  } else {
    EXPECT_TRUE(std::isinf(g.delta_r));
  }
}

TEST(BoostFaultMarginTest, MarginNeverExceedsNominalSMin) {
  const TaskSet set = table1_base();
  const BoostFaultMargin m = boost_fault_margin(set);
  EXPECT_NEAR(m.s_min, 4.0 / 3.0, 1e-6);
  EXPECT_LE(m.margin, m.s_min + 1e-9);
  // Table I has exactly one LO task (tau2, index 1).
  ASSERT_EQ(m.max_fallback.terminated.size(), 1u);
  EXPECT_EQ(m.max_fallback.terminated[0], 1u);
}

TEST(BoostFaultMarginTest, MarginSeparatesFeasibleFromHopeless) {
  const TaskSet set = table1_base();
  const BoostFaultMargin m = boost_fault_margin(set);
  EXPECT_TRUE(analyze_degraded(set, m.margin + 1e-6).feasible);
  const DegradedGuarantee hopeless = analyze_degraded(set, m.margin * 0.9);
  EXPECT_FALSE(hopeless.feasible);
  EXPECT_TRUE(std::isinf(hopeless.delta_r));
  EXPECT_TRUE(hopeless.hi_mode_misses_licensed);
}

TEST(ApplyTerminationTest, TerminatesListedLoTasks) {
  const TaskSet set = table1_base();
  const Expected<TaskSet> reduced = apply_termination(set, {1});
  ASSERT_TRUE(reduced.is_ok());
  EXPECT_TRUE(reduced.value()[1].dropped_in_hi());
  EXPECT_EQ(reduced.value()[1].name(), "tau2");
  EXPECT_FALSE(reduced.value()[0].dropped_in_hi());
  // Termination weakly lowers the HI-mode demand, hence s_min.
  EXPECT_LE(min_speedup_value(reduced.value()), min_speedup_value(set) + 1e-9);
}

TEST(ApplyTerminationTest, RejectsBadIndexLists) {
  const TaskSet set = table1_base();
  EXPECT_FALSE(apply_termination(set, {0}));     // tau1 is HI-criticality
  EXPECT_FALSE(apply_termination(set, {1, 1}));  // duplicate
  EXPECT_FALSE(apply_termination(set, {7}));     // out of range
  EXPECT_TRUE(apply_termination(set, {}).is_ok());
}

TEST(InflateDetectionDelayTest, InflatesOnlyHiBudgets) {
  const TaskSet set = table1_base();  // tau1: C=(3,5), D(LO)=4
  const Expected<TaskSet> inflated = inflate_detection_delay(set, 1);
  ASSERT_TRUE(inflated.is_ok());
  EXPECT_EQ(inflated.value()[0].wcet(Mode::LO), 4);  // 3 + 1
  EXPECT_EQ(inflated.value()[0].wcet(Mode::HI), 5);  // unchanged
  EXPECT_EQ(inflated.value()[1].wcet(Mode::LO), 2);  // LO task untouched
  // Inflation trades HI-mode carry-over demand for LO-mode load: s_min may
  // move either way, but the LO-mode demand strictly grows.
  EXPECT_GT(inflated.value()[0].utilization(Mode::LO), set[0].utilization(Mode::LO));
}

TEST(InflateDetectionDelayTest, CapsAtHiWcetAndReportsBrokenModels) {
  // delta = 2 pushes tau1's C(LO) to 5 > D(LO) = 4: no guarantee survives.
  EXPECT_FALSE(inflate_detection_delay(table1_base(), 2));
  EXPECT_FALSE(inflate_detection_delay(table1_base(), -1));

  // With deadline slack the inflation caps at C(HI).
  const TaskSet roomy({McTask::hi("t", 1, 5, 6, 8, 8)});
  const Expected<TaskSet> inflated = inflate_detection_delay(roomy, 100);
  ASSERT_TRUE(inflated.is_ok());
  EXPECT_EQ(inflated.value()[0].wcet(Mode::LO), 5);
}

TEST(InflateDetectionDelayTest, ZeroDelayIsIdentity) {
  const TaskSet set = table1_base();
  const Expected<TaskSet> same = inflate_detection_delay(set, 0);
  ASSERT_TRUE(same.is_ok());
  for (std::size_t i = 0; i < set.size(); ++i) {
    EXPECT_EQ(same.value()[i].wcet(Mode::LO), set[i].wcet(Mode::LO));
    EXPECT_EQ(same.value()[i].wcet(Mode::HI), set[i].wcet(Mode::HI));
  }
}

TEST(DegradedResettingTimeTest, MatchesResetAnalysisOnReducedSet) {
  const TaskSet set = table1_base();
  EXPECT_NEAR(degraded_resetting_time(set, 2.0, {}), resetting_time_value(set, 2.0), 1e-9);

  const Expected<TaskSet> reduced = apply_termination(set, {1});
  ASSERT_TRUE(reduced.is_ok());
  FallbackPlan fallback;
  fallback.terminated = {1};
  EXPECT_NEAR(degraded_resetting_time(set, 2.0, fallback),
              resetting_time_value(reduced.value(), 2.0), 1e-9);
}

TEST(DegradedResettingTimeTest, SlowerSpeedInflatesDwell) {
  const TaskSet set = table1_base();
  const double fast = degraded_resetting_time(set, 2.0, {});
  const double slow = degraded_resetting_time(set, 1.5, {});
  EXPECT_GT(slow, fast);
}

TEST(AnalyzeDegradedTest, DegradedExampleToleratesSlowdown) {
  // Example 1's degraded set has s_min = 12/13 < 1: even a boost stuck at
  // unit speed keeps the full guarantee.
  const TaskSet set = table1_degraded();
  const DegradedGuarantee g = analyze_degraded(set, 1.0);
  EXPECT_TRUE(g.schedulable_unmodified);
  EXPECT_FALSE(g.hi_mode_misses_licensed);
  EXPECT_NEAR(g.nominal_s_min, 12.0 / 13.0, 1e-6);
}

}  // namespace
}  // namespace rbs

// Unit tests for the demand bound functions (Eq. 4 and Lemma 1).
//
// Golden values are hand-computed for the running example
//   tau1 = HI task, C=(2,4), D=(5,10), T=10
//   tau2 = LO task, C=3,     D=T=12 (no degradation)
#include "core/dbf.hpp"

#include <gtest/gtest.h>

#include "core/breakpoints.hpp"

namespace rbs {
namespace {

McTask tau1() { return McTask::hi("tau1", 2, 4, 5, 10, 10); }
McTask tau2() { return McTask::lo("tau2", 3, 12, 12); }

// ---- dbf_lo (Eq. 4) ------------------------------------------------------

TEST(DbfLoTest, ZeroBeforeFirstDeadline) {
  const McTask t = tau1();
  for (Ticks d = 0; d < 5; ++d) EXPECT_EQ(dbf_lo(t, d), 0) << "delta=" << d;
}

TEST(DbfLoTest, StepsAtDeadlinePlusPeriods) {
  const McTask t = tau1();
  EXPECT_EQ(dbf_lo(t, 5), 2);
  EXPECT_EQ(dbf_lo(t, 14), 2);
  EXPECT_EQ(dbf_lo(t, 15), 4);
  EXPECT_EQ(dbf_lo(t, 24), 4);
  EXPECT_EQ(dbf_lo(t, 25), 6);
}

TEST(DbfLoTest, UsesLoModeWcet) {
  // dbf_lo of a HI task counts C(LO), not C(HI).
  EXPECT_EQ(dbf_lo(tau1(), 100), 2 * (static_cast<Ticks>((100 - 5) / 10) + 1));
}

TEST(DbfLoTest, ImplicitDeadlineTask) {
  const McTask t = tau2();
  EXPECT_EQ(dbf_lo(t, 11), 0);
  EXPECT_EQ(dbf_lo(t, 12), 3);
  EXPECT_EQ(dbf_lo(t, 23), 3);
  EXPECT_EQ(dbf_lo(t, 24), 6);
}

TEST(DbfLoTest, MonotoneNonDecreasing) {
  const McTask t = tau1();
  Ticks prev = 0;
  for (Ticks d = 0; d <= 200; ++d) {
    const Ticks v = dbf_lo(t, d);
    EXPECT_GE(v, prev) << "delta=" << d;
    prev = v;
  }
}

TEST(DbfLoTest, BreakpointSequenceMatchesJumps) {
  const McTask t = tau1();
  const ArithSeq seq = dbf_lo_breakpoints(t);
  EXPECT_EQ(seq.start, 5);
  EXPECT_EQ(seq.period, 10);
  // Jumps happen exactly at the sequence points.
  for (Ticks d = 1; d <= 100; ++d) {
    const bool jumped = dbf_lo(t, d) != dbf_lo(t, d - 1);
    const bool on_seq = (d >= seq.start) && ((d - seq.start) % seq.period == 0);
    EXPECT_EQ(jumped, on_seq) << "delta=" << d;
  }
}

// ---- dbf_hi (Lemma 1) ----------------------------------------------------

TEST(DbfHiTest, HiTaskGoldenValues) {
  const McTask t = tau1();  // g = D(HI)-D(LO) = 5
  EXPECT_EQ(dbf_hi(t, 0), 0);
  EXPECT_EQ(dbf_hi(t, 4), 0);   // w = -1
  EXPECT_EQ(dbf_hi(t, 5), 2);   // w = 0: C(HI)-C(LO)
  EXPECT_EQ(dbf_hi(t, 6), 3);   // ramp
  EXPECT_EQ(dbf_hi(t, 7), 4);   // ramp saturates at C(LO)
  EXPECT_EQ(dbf_hi(t, 8), 4);
  EXPECT_EQ(dbf_hi(t, 9), 4);
  EXPECT_EQ(dbf_hi(t, 10), 4);  // full-job term takes over
  EXPECT_EQ(dbf_hi(t, 14), 4);
  EXPECT_EQ(dbf_hi(t, 15), 6);
  EXPECT_EQ(dbf_hi(t, 17), 8);
  EXPECT_EQ(dbf_hi(t, 20), 8);
}

TEST(DbfHiTest, LoTaskWithoutDegradationRampsImmediately) {
  const McTask t = tau2();  // g = 0
  EXPECT_EQ(dbf_hi(t, 0), 0);
  EXPECT_EQ(dbf_hi(t, 1), 1);
  EXPECT_EQ(dbf_hi(t, 2), 2);
  EXPECT_EQ(dbf_hi(t, 3), 3);
  EXPECT_EQ(dbf_hi(t, 4), 3);
  EXPECT_EQ(dbf_hi(t, 12), 3);
  EXPECT_EQ(dbf_hi(t, 13), 4);
  EXPECT_EQ(dbf_hi(t, 15), 6);
}

TEST(DbfHiTest, DegradedLoTaskShiftsRamp) {
  // Degraded to D(HI)=15, T(HI)=20: g = 3.
  const McTask t = McTask::lo("tau2", 3, 12, 12, 15, 20);
  EXPECT_EQ(dbf_hi(t, 0), 0);
  EXPECT_EQ(dbf_hi(t, 3), 0);  // w = 0, C(HI)=C(LO) so the jump is 0
  EXPECT_EQ(dbf_hi(t, 4), 1);
  EXPECT_EQ(dbf_hi(t, 6), 3);
  EXPECT_EQ(dbf_hi(t, 7), 3);
  EXPECT_EQ(dbf_hi(t, 20), 3);  // q=1, rho=0
  EXPECT_EQ(dbf_hi(t, 24), 4);
}

TEST(DbfHiTest, DroppedTaskHasNoHiDemand) {
  const McTask t = McTask::lo_terminated("tau2", 3, 12, 12);
  for (Ticks d : {0, 1, 5, 100, 10000}) EXPECT_EQ(dbf_hi(t, d), 0);
}

TEST(DbfHiTest, UnpreparedHiTaskDemandsAtZero) {
  // D(LO) == D(HI): the carry-over residual C(HI)-C(LO) is due immediately,
  // which is what makes s_min infinite (discussion after Theorem 2).
  const McTask t = McTask::hi("t", 2, 4, 10, 10, 10);
  EXPECT_EQ(dbf_hi(t, 0), 2);
}

TEST(DbfHiTest, LeftLimitAtJumpAndRamp) {
  const McTask t = tau1();
  EXPECT_EQ(dbf_hi_left(t, 5), 0);   // jump of C(HI)-C(LO)=2 at w=0
  EXPECT_EQ(dbf_hi_left(t, 6), 3);   // ramp is continuous
  EXPECT_EQ(dbf_hi_left(t, 7), 4);
  EXPECT_EQ(dbf_hi_left(t, 10), 4);  // window boundary: continuous here
  EXPECT_EQ(dbf_hi_left(t, 15), 4);  // jump of 2 at 15
}

TEST(DbfHiTest, LeftLimitOfLoTaskAtWindowBoundary) {
  const McTask t = tau2();
  // At delta=12 the q-term jumps by C while the ramp resets from C: the
  // function is continuous there (3 -> 3) and immediately ramps again, so the
  // left limit at 13 is 4.
  EXPECT_EQ(dbf_hi_left(t, 12), 3);
  EXPECT_EQ(dbf_hi(t, 12), 3);
  EXPECT_EQ(dbf_hi_left(t, 13), 4);
}

TEST(DbfHiTest, PeriodicityShiftProperty) {
  // DBF_HI(delta + T(HI)) = DBF_HI(delta) + C(HI) -- the periodicity that
  // underpins the pseudo-polynomial bound.
  const McTask a = tau1();
  const McTask b = McTask::lo("l", 3, 12, 12, 15, 20);
  for (Ticks d = 0; d <= 200; ++d) {
    EXPECT_EQ(dbf_hi(a, d + 10), dbf_hi(a, d) + 4);
    EXPECT_EQ(dbf_hi(b, d + 20), dbf_hi(b, d) + 3);
  }
}

TEST(DbfHiTest, MonotoneNonDecreasing) {
  for (const McTask& t : {tau1(), tau2(), McTask::lo("l", 3, 12, 12, 15, 20)}) {
    Ticks prev = 0;
    for (Ticks d = 0; d <= 300; ++d) {
      const Ticks v = dbf_hi(t, d);
      EXPECT_GE(v, prev) << describe(t) << " delta=" << d;
      prev = v;
    }
  }
}

TEST(DbfHiTest, MorePreparationNeverIncreasesHiDemand) {
  // Shrinking D(LO) of a HI task (more overrun preparation) weakly decreases
  // DBF_HI pointwise.
  for (Ticks d_lo = 2; d_lo <= 9; ++d_lo) {
    const McTask more = McTask::hi("m", 2, 4, d_lo - 1, 10, 10);
    const McTask less = McTask::hi("l", 2, 4, d_lo, 10, 10);
    for (Ticks d = 0; d <= 100; ++d)
      EXPECT_LE(dbf_hi(more, d), dbf_hi(less, d)) << "d_lo=" << d_lo << " delta=" << d;
  }
}

TEST(DbfHiTest, LeftLimitNeverExceedsRightValueAtJumpPoints) {
  // The demand function only jumps upward.
  for (const McTask& t : {tau1(), tau2()}) {
    for (Ticks d = 1; d <= 200; ++d)
      EXPECT_LE(dbf_hi_left(t, d), dbf_hi(t, d)) << describe(t) << " delta=" << d;
  }
}

TEST(DbfHiTest, TotalsSumOverTasks) {
  const TaskSet set({tau1(), tau2()});
  for (Ticks d = 0; d <= 50; ++d) {
    EXPECT_EQ(dbf_hi_total(set, d), dbf_hi(tau1(), d) + dbf_hi(tau2(), d));
    EXPECT_EQ(dbf_lo_total(set, d), dbf_lo(tau1(), d) + dbf_lo(tau2(), d));
  }
}

TEST(DbfHiTest, BreakpointsCoverAllSlopeChanges) {
  // Between consecutive breakpoints the function must be exactly linear.
  for (const McTask& t : {tau1(), McTask::lo("l", 5, 17, 17, 23, 29)}) {
    BreakpointMerger merger(dbf_hi_breakpoints(t));
    Ticks prev = *merger.next();
    while (true) {
      const auto next = merger.next();
      ASSERT_TRUE(next.has_value());
      if (*next > 300) break;
      // Linear on [prev, next): check via second differences on the interior.
      for (Ticks d = prev + 2; d < *next; ++d) {
        const Ticks second_diff = dbf_hi(t, d) - 2 * dbf_hi(t, d - 1) + dbf_hi(t, d - 2);
        EXPECT_EQ(second_diff, 0) << describe(t) << " delta=" << d;
      }
      // And continuous in the interior (left limit == value).
      for (Ticks d = prev + 1; d < *next; ++d)
        EXPECT_EQ(dbf_hi_left(t, d), dbf_hi(t, d)) << describe(t) << " delta=" << d;
      prev = *next;
    }
  }
}

TEST(BreakpointMergerTest, MergesAndDeduplicates) {
  BreakpointMerger merger({{0, 10}, {5, 10}, {0, 4}});
  std::vector<Ticks> got;
  for (int i = 0; i < 8; ++i) got.push_back(*merger.next());
  EXPECT_EQ(got, (std::vector<Ticks>{0, 4, 5, 8, 10, 12, 15, 16}));
}

TEST(BreakpointMergerTest, SingletonSequencesExhaust) {
  BreakpointMerger merger({{3, 0}, {1, 0}, {3, 0}});
  EXPECT_EQ(merger.next(), std::optional<Ticks>(1));
  EXPECT_EQ(merger.next(), std::optional<Ticks>(3));
  EXPECT_EQ(merger.next(), std::nullopt);
}

TEST(BreakpointMergerTest, InfiniteStartsAreIgnored) {
  BreakpointMerger merger({{kInfTicks, 10}, {2, 0}});
  EXPECT_EQ(merger.next(), std::optional<Ticks>(2));
  EXPECT_EQ(merger.next(), std::nullopt);
}

}  // namespace
}  // namespace rbs

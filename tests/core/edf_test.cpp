// Tests for the LO-mode processor-demand test.
#include "core/edf.hpp"

#include <gtest/gtest.h>

#include "core/dbf.hpp"
#include "gen/paper_examples.hpp"

namespace rbs {
namespace {

TEST(EdfTest, EmptySetSchedulable) { EXPECT_TRUE(lo_mode_schedulable(TaskSet{})); }

TEST(EdfTest, SingleImplicitTaskAlwaysSchedulable) {
  EXPECT_TRUE(lo_mode_schedulable(TaskSet({McTask::lo("l", 10, 10, 10)})));
}

TEST(EdfTest, OverUtilizedSetRejected) {
  const TaskSet set({McTask::lo("a", 6, 10, 10), McTask::lo("b", 6, 10, 10)});
  const EdfTestResult r = lo_mode_test(set);
  EXPECT_FALSE(r.schedulable);
  EXPECT_TRUE(r.conclusive);
}

TEST(EdfTest, FullUtilizationImplicitDeadlinesSchedulable) {
  // U == 1 with implicit deadlines: EDF schedulable (bound_slack == 0 path).
  const TaskSet set({McTask::lo("a", 5, 10, 10), McTask::lo("b", 10, 20, 20)});
  EXPECT_TRUE(lo_mode_schedulable(set));
}

TEST(EdfTest, ConstrainedDeadlineViolationFound) {
  // Two tasks, each C=2, D=2, T=100: at delta=2 demand is 4 > 2.
  const TaskSet set({McTask::lo("a", 2, 2, 100), McTask::lo("b", 2, 2, 100)});
  const EdfTestResult r = lo_mode_test(set);
  EXPECT_FALSE(r.schedulable);
  EXPECT_EQ(r.violation_delta, 2);
}

TEST(EdfTest, ViolationWitnessIsReal) {
  const TaskSet set({McTask::lo("a", 3, 4, 10), McTask::lo("b", 3, 4, 10),
                     McTask::lo("c", 2, 6, 12)});
  const EdfTestResult r = lo_mode_test(set);
  if (!r.schedulable && r.violation_delta > 0)
    EXPECT_GT(dbf_lo_total(set, r.violation_delta), r.violation_delta);
}

TEST(EdfTest, HiTasksUseLoDeadlinesInLoMode) {
  // The shortened (virtual) deadline makes an otherwise-fine set infeasible.
  const TaskSet tight({McTask::hi("h", 5, 5, 5, 10, 10), McTask::lo("l", 3, 6, 10)});
  EXPECT_FALSE(lo_mode_schedulable(tight));
  const TaskSet loose({McTask::hi("h", 5, 5, 10, 10, 10), McTask::lo("l", 3, 6, 10)});
  EXPECT_TRUE(lo_mode_schedulable(loose));
}

TEST(EdfTest, SpeedParameterScalesSupply) {
  const TaskSet set({McTask::lo("a", 2, 2, 100), McTask::lo("b", 2, 2, 100)});
  EXPECT_FALSE(lo_mode_schedulable(set, 1.0));
  EXPECT_TRUE(lo_mode_schedulable(set, 2.0));
}

TEST(EdfTest, Table1SetsSchedulable) {
  EXPECT_TRUE(lo_mode_schedulable(table1_base()));
  EXPECT_TRUE(lo_mode_schedulable(table1_degraded()));
}

TEST(EdfTest, BruteForceAgreementOnSmallSets) {
  // Exhaustive demand check over a long window must agree with the bounded
  // test for every deadline/period combination of this small family.
  for (Ticks d1 = 2; d1 <= 6; ++d1)
    for (Ticks c1 = 1; c1 <= d1; ++c1)
      for (Ticks c2 = 1; c2 <= 4; ++c2) {
        const TaskSet set({McTask::lo("a", c1, d1, 7), McTask::lo("b", c2, 4, 9)});
        const bool fast = lo_mode_schedulable(set);
        bool brute = set.total_utilization(Mode::LO) <= 1.0;
        if (brute) {
          for (Ticks delta = 1; delta <= 7 * 9 * 4; ++delta)
            if (dbf_lo_total(set, delta) > delta) {
              brute = false;
              break;
            }
        }
        EXPECT_EQ(fast, brute) << "c1=" << c1 << " d1=" << d1 << " c2=" << c2;
      }
}

TEST(EdfTest, DroppedTasksStillCountInLoMode) {
  // Termination only affects HI mode; LO-mode demand is unchanged.
  const TaskSet a({McTask::lo("l", 2, 2, 100), McTask::lo("m", 2, 2, 100)});
  const TaskSet b({McTask::lo_terminated("l", 2, 2, 100),
                   McTask::lo_terminated("m", 2, 2, 100)});
  EXPECT_EQ(lo_mode_schedulable(a), lo_mode_schedulable(b));
}

// --- boundary-schedulability regressions (tolerance policy, PR 2) ---------
// Demand-based MC analysis lives on exact breakpoints: "slack exactly 0"
// is a reachable state, and raw float == / < flips verdicts there. These
// pin the tolerance-routed behavior of the U-vs-speed trichotomy and the
// zero-slack degenerate branch (support/tolerance.hpp).

TEST(EdfBoundaryTest, ExactFullUtilizationStaysSchedulable) {
  // U == speed exactly, implicit deadlines: bound_slack is exactly 0 and the
  // degenerate branch must report schedulable, not walk an infinite window.
  const TaskSet set({McTask::lo("a", 1, 2, 2), McTask::lo("b", 1, 2, 2)});
  const EdfTestResult r = lo_mode_test(set);
  EXPECT_TRUE(r.schedulable);
  EXPECT_TRUE(r.conclusive);
}

TEST(EdfBoundaryTest, InexactFullUtilizationStaysSchedulable) {
  // Ten C/T = 1/10 tasks: the mathematical utilization is 1 but the
  // accumulated double is 0.999...9 (an ulp short -- ten adds of 0.1).
  // Without the speed tolerance this falls into the bounded-window branch
  // with a bogus ~1e16-tick window; with it, the degenerate branch applies.
  std::vector<McTask> tasks;
  for (int i = 0; i < 10; ++i)
    tasks.push_back(McTask::lo("t" + std::to_string(i), 1, 10, 10));
  const TaskSet set(tasks);
  const double u = set.total_utilization(Mode::LO);
  ASSERT_TRUE(u < 1.0);  // the premise: the accumulated U is an ulp short
  const EdfTestResult r = lo_mode_test(set);
  EXPECT_TRUE(r.schedulable);
  EXPECT_TRUE(r.conclusive);
  EXPECT_LT(r.breakpoints_visited, 100u);
}

TEST(EdfBoundaryTest, ZeroSlackWitnessPointStaysSchedulable) {
  // U = 0.75 < 1, but demand(2) = 2 = supply(2) exactly: slack is 0 at the
  // witness breakpoint and the set must remain schedulable.
  const TaskSet set({McTask::lo("a", 2, 2, 4), McTask::lo("b", 1, 4, 4)});
  const EdfTestResult r = lo_mode_test(set);
  EXPECT_TRUE(r.schedulable);
  EXPECT_TRUE(r.conclusive);
}

TEST(EdfBoundaryTest, DefinitelyOverloadedStillRejected) {
  // The tolerance must not absorb genuine overload: U = 1.2 > 1.
  const TaskSet set({McTask::lo("a", 6, 10, 10), McTask::lo("b", 6, 10, 10)});
  const EdfTestResult r = lo_mode_test(set);
  EXPECT_FALSE(r.schedulable);
  EXPECT_TRUE(r.conclusive);
}

TEST(EdfBoundaryTest, FullUtilizationAtNonUnitSpeed) {
  // Same boundary at speed 2: U == speed exactly with implicit deadlines.
  const TaskSet set({McTask::lo("a", 2, 2, 2), McTask::lo("b", 2, 2, 2)});
  EXPECT_TRUE(lo_mode_schedulable(set, 2.0));
  EXPECT_FALSE(lo_mode_schedulable(set, 1.0));
}

}  // namespace
}  // namespace rbs

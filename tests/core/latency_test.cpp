// Tests for the DVFS transition-latency analysis (core/latency.hpp) and its
// simulator counterpart.
#include "core/latency.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/reset.hpp"
#include "core/speedup.hpp"
#include "gen/paper_examples.hpp"
#include "sim/simulator.hpp"
#include "support/tolerance.hpp"

namespace rbs {
namespace {

TEST(LatencySpeedupTest, ZeroLatencyMatchesTheorem2WhenBoostNeeded) {
  // Table I needs s_min = 4/3 > 1, so restricting to s >= 1 changes nothing.
  const LatencySpeedupResult r = min_speedup_with_latency(table1_base(), 0);
  EXPECT_NEAR(r.s_min, 4.0 / 3.0, 1e-12);
  EXPECT_EQ(r.argmax, 3);
}

TEST(LatencySpeedupTest, ZeroLatencyFlooredAtOne) {
  // The degraded variant could slow down (s_min = 12/13); with the latency
  // model's s >= 1 semantics the answer floors at 1.
  const LatencySpeedupResult r = min_speedup_with_latency(table1_degraded(), 0);
  EXPECT_DOUBLE_EQ(r.s_min, 1.0);
}

TEST(LatencySpeedupTest, MonotoneInLatency) {
  const TaskSet set = table1_base();
  double prev = 1.0;
  for (Ticks latency : {0, 1, 2}) {
    const double s = min_speedup_with_latency(set, latency).s_min;
    EXPECT_GE(s + 1e-12, prev) << "latency=" << latency;
    EXPECT_TRUE(std::isfinite(s));
    prev = s;
  }
}

TEST(LatencySpeedupTest, HandComputedValue) {
  // Table I, latency 1: the binding interval is still Delta = 3 with demand
  // 4: 4 <= 3 + (3-1)(s-1) => s >= 3/2. Check interval 6 (demand 7):
  // 7 <= 6 + 5(s-1) => s >= 6/5 -- smaller. So s_min = 1.5.
  const LatencySpeedupResult r = min_speedup_with_latency(table1_base(), 1);
  EXPECT_NEAR(r.s_min, 1.5, 1e-12);
  EXPECT_EQ(r.argmax, 3);
}

TEST(LatencySpeedupTest, InfiniteWhenWindowOverflows) {
  // Demand of 4 work units due at Delta = 3 cannot be served at nominal
  // speed once the latency covers the whole interval.
  const LatencySpeedupResult r = min_speedup_with_latency(table1_base(), 3);
  EXPECT_TRUE(std::isinf(r.s_min));
}

TEST(LatencySpeedupTest, EmptySetNeedsNothing) {
  EXPECT_DOUBLE_EQ(min_speedup_with_latency(TaskSet{}, 5).s_min, 1.0);
}

TEST(LatencyResetTest, ZeroLatencyMatchesCorollary5) {
  for (double s : {4.0 / 3.0, 2.0, 3.0})
    EXPECT_NEAR(resetting_time_with_latency(table1_base(), s, 0),
                resetting_time_value(table1_base(), s), 1e-9)
        << "s=" << s;
}

TEST(LatencyResetTest, HandComputedValue) {
  // Table I at s = 2, latency 2: supply(D) = D + (D-2). The zero-latency
  // reset was 6 where ADB(6) = 12 = 2*6; now supply(6) = 10 < 12, and on
  // [6, 7) the demand is constant 12: 12 = D + (D-2) => D = 7.
  EXPECT_NEAR(resetting_time_with_latency(table1_base(), 2.0, 2), 7.0, 1e-9);
}

TEST(LatencyResetTest, MonotoneInLatency) {
  double prev = 0.0;
  for (Ticks latency : {0, 1, 2, 4}) {
    const double dr = resetting_time_with_latency(table1_base(), 2.0, latency);
    EXPECT_GE(dr + 1e-9, prev);
    prev = dr;
  }
}

TEST(LatencyResetTest, InfiniteAtOrBelowUtilization) {
  // U_HI > 1 (1.0 + 0.8): even permanent unit speed never drains the
  // backlog, and a boost at exactly U_HI doesn't either.
  const TaskSet heavy({McTask::hi("a", 1, 4, 2, 4, 4), McTask::hi("b", 1, 4, 3, 5, 5)});
  const double u = heavy.total_utilization(Mode::HI);
  ASSERT_GT(u, 1.0);
  EXPECT_TRUE(std::isinf(resetting_time_with_latency(heavy, 1.0, 2)));
  EXPECT_TRUE(std::isinf(resetting_time_with_latency(heavy, u, 2)));
  EXPECT_TRUE(std::isfinite(resetting_time_with_latency(heavy, u + 0.2, 2)));
}

TEST(LatencyResetTest, AllDroppedCrossesSupplyKink) {
  // Carry-over work 5, s = 2, latency 3: 5 > 3, so D*2 - 3 = 5 => D = 4.
  const TaskSet set({McTask::lo_terminated("a", 2, 10, 10),
                     McTask::lo_terminated("b", 3, 20, 20)});
  EXPECT_NEAR(resetting_time_with_latency(set, 2.0, 3), 4.0, 1e-9);
  // Latency beyond the work: crossing before the kink, at Delta = 5.
  EXPECT_NEAR(resetting_time_with_latency(set, 2.0, 8), 5.0, 1e-9);
}

TEST(LatencySimTest, BoostDelayedByLatency) {
  const TaskSet set({McTask::hi("h", 3, 5, 4, 7, 7)});
  sim::SimConfig cfg;
  cfg.horizon = 7.0;
  cfg.hi_speed = 2.0;
  cfg.speed_change_latency = 1.0;
  cfg.demand.overrun_probability = 1.0;
  cfg.record_trace = true;
  const sim::SimResult r = sim::simulate(set, cfg);
  // Switch at 3; nominal speed on [3, 4] (1 work), boosted from 4:
  // remaining 1 work at speed 2 -> completion at 4.5 (vs 4 with no latency).
  ASSERT_EQ(r.jobs_completed, 1u);
  EXPECT_NEAR(r.task_stats[0].max_response, 4.5, 1e-6);
  bool saw_slow_hi_segment = false;
  for (const sim::TraceSegment& seg : r.trace.segments)
    if (seg.mode == Mode::HI && approx_eq(seg.speed, 1.0, kSpeedTol)) saw_slow_hi_segment = true;
  EXPECT_TRUE(saw_slow_hi_segment);
}

TEST(LatencySimTest, BoundsHoldInSimulationWithLatency) {
  const TaskSet set = table1_base();
  const Ticks latency = 1;
  const double s = min_speedup_with_latency(set, latency).s_min;  // 1.5
  const double dr = resetting_time_with_latency(set, s, latency);
  ASSERT_TRUE(std::isfinite(dr));

  sim::SimConfig cfg;
  cfg.horizon = 30000.0;
  cfg.hi_speed = s;
  cfg.speed_change_latency = static_cast<double>(latency);
  cfg.demand.overrun_probability = 0.7;
  cfg.release_jitter = 0.2;
  const sim::SimResult r = sim::simulate(set, cfg);
  EXPECT_FALSE(r.deadline_missed());
  EXPECT_GT(r.mode_switches, 0u);
  for (double dwell : r.hi_dwell_times) EXPECT_LE(dwell, dr + 1e-6);
}

TEST(LatencySimTest, LatencyAwareBoundAboveZeroLatencyBound) {
  // Ignoring the transition latency under-provisions: the latency-aware
  // certificate strictly exceeds Theorem 2's on any set whose binding
  // interval is short (Table I: 1.5 vs 4/3).
  const TaskSet set = table1_base();
  EXPECT_GT(min_speedup_with_latency(set, 1).s_min,
            min_speedup(set).s_min + 0.1);
}

}  // namespace
}  // namespace rbs

// Tests for the EDF-VD baseline (ref. [4]).
#include "core/vd.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace rbs {
namespace {

ImplicitSet easy_set() {
  // U_LO(LO)=0.2, U_HI(LO)=0.2, U_HI(HI)=0.4: trivially schedulable.
  return ImplicitSet({
      {"h", Criticality::HI, 10, 2, 4},
      {"l", Criticality::LO, 10, 2, 2},
  });
}

ImplicitSet tight_set() {
  // U_LO(LO)=0.3, U_HI(LO)=0.3, U_HI(HI)=0.8: needs virtual deadlines.
  return ImplicitSet({
      {"h", Criticality::HI, 10, 3, 8},
      {"l", Criticality::LO, 10, 3, 3},
  });
}

TEST(EdfVdTest, PlainEdfWhenTotalFits) {
  const EdfVdResult r = edf_vd_schedulable(easy_set());
  EXPECT_TRUE(r.schedulable);
  EXPECT_DOUBLE_EQ(r.x, 1.0);
}

TEST(EdfVdTest, VirtualDeadlinesCertifyTightSet) {
  const EdfVdResult r = edf_vd_schedulable(tight_set());
  // x = 0.3 / (1 - 0.3) = 3/7; HI check: (3/7)*0.3 + 0.8 = 0.9285... <= 1.
  ASSERT_TRUE(r.schedulable);
  EXPECT_NEAR(r.x, 3.0 / 7.0, 1e-12);
}

TEST(EdfVdTest, OverloadedSetRejected) {
  const ImplicitSet set({
      {"h", Criticality::HI, 10, 5, 10},
      {"l", Criticality::LO, 10, 5, 5},
  });
  // x = 0.5/(1-0.5) = 1 and HI check: 1*0.5 + 1.0 = 1.5 > 1.
  EXPECT_FALSE(edf_vd_schedulable(set).schedulable);
}

TEST(EdfVdTest, SpeedupRescuesOverloadedSet) {
  const ImplicitSet set({
      {"h", Criticality::HI, 10, 5, 10},
      {"l", Criticality::LO, 10, 5, 5},
  });
  EXPECT_TRUE(edf_vd_schedulable(set, 1.5).schedulable);
  EXPECT_NEAR(edf_vd_min_speedup(set), 1.5, 1e-12);
}

TEST(EdfVdTest, MinSpeedupIsOneWhenPlainEdfWorks) {
  EXPECT_DOUBLE_EQ(edf_vd_min_speedup(easy_set()), 1.0);
}

TEST(EdfVdTest, LoModeSaturationIsHopeless) {
  // U_LO(LO) >= 1: no speedup in HI mode fixes LO mode.
  const ImplicitSet set({
      {"h", Criticality::HI, 10, 2, 4},
      {"l", Criticality::LO, 10, 10, 10},
  });
  EXPECT_FALSE(edf_vd_schedulable(set, 100.0).schedulable);
  EXPECT_TRUE(std::isinf(edf_vd_min_speedup(set)));
}

TEST(EdfVdTest, XAboveOneIsRejected) {
  // U_HI(LO)/(1 - U_LO(LO)) > 1: LO-mode condition unsatisfiable.
  const ImplicitSet set({
      {"h", Criticality::HI, 10, 8, 9},
      {"l", Criticality::LO, 10, 3, 3},
  });
  EXPECT_FALSE(edf_vd_schedulable(set, 100.0).schedulable);
  EXPECT_TRUE(std::isinf(edf_vd_min_speedup(set)));
}

TEST(EdfVdTest, MinSpeedupConsistentWithTest) {
  for (const ImplicitSet& set : {easy_set(), tight_set()}) {
    const double s = edf_vd_min_speedup(set);
    ASSERT_TRUE(std::isfinite(s));
    EXPECT_TRUE(edf_vd_schedulable(set, s).schedulable);
    if (s > 1.0) EXPECT_FALSE(edf_vd_schedulable(set, s - 0.01).schedulable);
  }
}

TEST(EdfVdTest, HiOnlySet) {
  const ImplicitSet set({{"h", Criticality::HI, 10, 3, 9}});
  const EdfVdResult r = edf_vd_schedulable(set);
  EXPECT_TRUE(r.schedulable);  // U_HI(HI) = 0.9 <= 1 via plain EDF
}

}  // namespace
}  // namespace rbs

// Tests for partitioned multiprocessor allocation.
#include "core/partition.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "core/edf.hpp"
#include "core/reset.hpp"
#include "core/speedup.hpp"
#include "gen/fms.hpp"
#include "gen/rng.hpp"
#include "gen/taskgen.hpp"

namespace rbs {
namespace {

TaskSet two_heavy_tasks() {
  // Each task alone fits a unit-speed core (s_min 0.89 resp. 1.0), but the
  // pair's HI-mode demand peaks at 18 work units in a window of 10
  // (s_min = 1.8): one core only works with a ~2x speedup budget.
  return TaskSet({McTask::hi("a", 1, 8, 2, 10, 10), McTask::hi("b", 1, 11, 4, 14, 14)});
}

TEST(PartitionTest, ZeroCoresInfeasible) {
  EXPECT_FALSE(partition_first_fit(two_heavy_tasks(), 0).feasible);
}

TEST(PartitionTest, EmptySetTriviallyFeasible) {
  const PartitionResult r = partition_first_fit(TaskSet{}, 2);
  EXPECT_TRUE(r.feasible);
  EXPECT_TRUE(r.assignment[0].empty());
}

TEST(PartitionTest, HeavyTasksNeedSeparateCores) {
  PartitionOptions options;
  options.hi_speedup = 1.0;
  EXPECT_FALSE(partition_first_fit(two_heavy_tasks(), 1, options).feasible);
  const PartitionResult r = partition_first_fit(two_heavy_tasks(), 2, options);
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.assignment[0].size(), 1u);
  EXPECT_EQ(r.assignment[1].size(), 1u);
}

TEST(PartitionTest, SpeedupBudgetReducesCores) {
  // With a 2x budget both tasks fit one core; without it they need two.
  PartitionOptions fast;
  fast.hi_speedup = 2.0;
  PartitionOptions slow;
  slow.hi_speedup = 1.0;
  EXPECT_EQ(cores_needed(two_heavy_tasks(), 4, fast), std::optional<std::size_t>(1));
  EXPECT_EQ(cores_needed(two_heavy_tasks(), 4, slow), std::optional<std::size_t>(2));
}

TEST(PartitionTest, EveryCoreRespectsBudgets) {
  Rng rng(31);
  GenParams params;
  params.u_bound = 0.9;
  const auto skeleton = generate_task_set(params, rng);
  ASSERT_TRUE(skeleton.has_value());
  const TaskSet set = skeleton->materialize(0.6, 2.0);

  PartitionOptions options;
  options.hi_speedup = 1.5;
  options.max_reset = 5000.0;
  const auto cores = cores_needed(set, 8, options);
  ASSERT_TRUE(cores.has_value());
  const PartitionResult r = partition_first_fit(set, *cores, options);
  ASSERT_TRUE(r.feasible);

  std::size_t assigned = 0;
  for (std::size_t c = 0; c < r.assignment.size(); ++c) {
    assigned += r.assignment[c].size();
    if (r.assignment[c].empty()) continue;
    std::vector<McTask> tasks;
    for (std::size_t idx : r.assignment[c]) tasks.push_back(set[idx]);
    const TaskSet core(tasks);
    EXPECT_TRUE(lo_mode_schedulable(core)) << "core " << c;
    EXPECT_LE(min_speedup_value(core), options.hi_speedup + 1e-9) << "core " << c;
    EXPECT_LE(resetting_time_value(core, options.hi_speedup), options.max_reset + 1e-9);
    EXPECT_NEAR(r.core_s_min[c], min_speedup_value(core), 1e-12);
  }
  EXPECT_EQ(assigned, set.size());  // every task placed exactly once
}

TEST(PartitionTest, RejectedTaskReported) {
  PartitionOptions options;
  options.hi_speedup = 1.0;
  const PartitionResult r = partition_first_fit(two_heavy_tasks(), 1, options);
  ASSERT_FALSE(r.feasible);
  ASSERT_TRUE(r.rejected_task.has_value());
}

TEST(PartitionTest, DecreasingNeverNeedsMoreCoresOnTheseSets) {
  // FFD is a heuristic; on these workloads it should not lose to plain FF.
  Rng rng(32);
  GenParams params;
  params.u_bound = 0.8;
  for (int trial = 0; trial < 5; ++trial) {
    const auto skeleton = generate_task_set(params, rng);
    if (!skeleton) continue;
    const TaskSet set = skeleton->materialize(0.7, 2.0);
    PartitionOptions ffd;
    PartitionOptions ff;
    ff.decreasing = false;
    const auto c1 = cores_needed(set, 8, ffd);
    const auto c2 = cores_needed(set, 8, ff);
    if (c1 && c2) EXPECT_LE(*c1, *c2 + 1);  // allow one-core slack for FF luck
  }
}

TEST(PartitionTest, SpeedupBudgetBoundaryIsToleranceRouted) {
  // A budget sitting exactly on the pair's s_min (or within kSpeedTol of it)
  // must be accepted -- the acceptance routes through approx_le, not the
  // facade's exact hi_schedulable compare -- while a clearly smaller budget
  // is rejected.
  const TaskSet set = two_heavy_tasks();
  const double s_min = min_speedup_value(set);
  ASSERT_GT(s_min, 1.0);

  PartitionOptions exact;
  exact.hi_speedup = s_min;
  EXPECT_TRUE(partition_first_fit(set, 1, exact).feasible);

  PartitionOptions noise;
  noise.hi_speedup = s_min - 1e-12;  // inside kSpeedTol
  EXPECT_TRUE(partition_first_fit(set, 1, noise).feasible);

  PartitionOptions below;
  below.hi_speedup = s_min - 0.01;  // decisively below
  EXPECT_FALSE(partition_first_fit(set, 1, below).feasible);
}

TEST(PartitionTest, ResetBudgetBoundaryIsToleranceRouted) {
  const TaskSet set = two_heavy_tasks();
  PartitionOptions options;
  options.hi_speedup = 2.0;
  const double delta_r = resetting_time_value(set, options.hi_speedup);
  ASSERT_TRUE(std::isfinite(delta_r));
  ASSERT_GT(delta_r, 0.0);

  options.max_reset = delta_r;  // exactly on the budget: accepted
  EXPECT_TRUE(partition_first_fit(set, 1, options).feasible);

  options.max_reset = delta_r - 1e-9;  // inside kTimeTol: still accepted
  EXPECT_TRUE(partition_first_fit(set, 1, options).feasible);

  options.max_reset = delta_r * 0.5;  // decisively below: rejected
  EXPECT_FALSE(partition_first_fit(set, 1, options).feasible);
}

TEST(PartitionTest, ReportsPerCoreResetTimes) {
  PartitionOptions options;
  options.hi_speedup = 2.0;
  const PartitionResult r = partition_first_fit(two_heavy_tasks(), 2, options);
  ASSERT_TRUE(r.feasible);
  ASSERT_EQ(r.core_delta_r.size(), 2u);
  for (std::size_t c = 0; c < 2; ++c) {
    if (r.assignment[c].empty()) {
      EXPECT_EQ(r.core_delta_r[c], 0.0);
      continue;
    }
    std::vector<McTask> tasks;
    for (std::size_t idx : r.assignment[c]) tasks.push_back(two_heavy_tasks()[idx]);
    EXPECT_NEAR(r.core_delta_r[c], resetting_time_value(TaskSet(tasks), 2.0), 1e-9)
        << "core " << c;
  }
}

TEST(PartitionTest, HeterogeneousBudgetsPerCore) {
  // Core 0 has no speedup headroom, core 1 a 2x budget: the pair must land
  // with at most one task on core 0 and the rest on core 1.
  PartitionOptions options;
  options.core_budgets = {CoreBudget{1.0, std::numeric_limits<double>::infinity()},
                          CoreBudget{2.0, std::numeric_limits<double>::infinity()}};
  const PartitionResult r = partition_first_fit(two_heavy_tasks(), 2, options);
  ASSERT_TRUE(r.feasible);
  EXPECT_LE(r.assignment[0].size(), 1u);

  // A budget vector that does not match the core count is a caller error.
  EXPECT_FALSE(partition_first_fit(two_heavy_tasks(), 3, options).feasible);

  // core_budget() resolves uniform vs heterogeneous.
  EXPECT_EQ(core_budget(options, 1).hi_speedup, 2.0);
  PartitionOptions uniform;
  uniform.hi_speedup = 1.25;
  EXPECT_EQ(core_budget(uniform, 7).hi_speedup, 1.25);
}

TEST(PartitionTest, FmsFitsOneCoreAtTwoX) {
  const TaskSet fms = fms_task_set(2.0).materialize(0.5, 2.0);
  PartitionOptions options;
  options.hi_speedup = 2.0;
  EXPECT_EQ(cores_needed(fms, 4, options), std::optional<std::size_t>(1));
}

}  // namespace
}  // namespace rbs

// Tests for partitioned multiprocessor allocation.
#include "core/partition.hpp"

#include <gtest/gtest.h>

#include "core/edf.hpp"
#include "core/reset.hpp"
#include "core/speedup.hpp"
#include "gen/fms.hpp"
#include "gen/rng.hpp"
#include "gen/taskgen.hpp"

namespace rbs {
namespace {

TaskSet two_heavy_tasks() {
  // Each task alone fits a unit-speed core (s_min 0.89 resp. 1.0), but the
  // pair's HI-mode demand peaks at 18 work units in a window of 10
  // (s_min = 1.8): one core only works with a ~2x speedup budget.
  return TaskSet({McTask::hi("a", 1, 8, 2, 10, 10), McTask::hi("b", 1, 11, 4, 14, 14)});
}

TEST(PartitionTest, ZeroCoresInfeasible) {
  EXPECT_FALSE(partition_first_fit(two_heavy_tasks(), 0).feasible);
}

TEST(PartitionTest, EmptySetTriviallyFeasible) {
  const PartitionResult r = partition_first_fit(TaskSet{}, 2);
  EXPECT_TRUE(r.feasible);
  EXPECT_TRUE(r.assignment[0].empty());
}

TEST(PartitionTest, HeavyTasksNeedSeparateCores) {
  PartitionOptions options;
  options.hi_speedup = 1.0;
  EXPECT_FALSE(partition_first_fit(two_heavy_tasks(), 1, options).feasible);
  const PartitionResult r = partition_first_fit(two_heavy_tasks(), 2, options);
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.assignment[0].size(), 1u);
  EXPECT_EQ(r.assignment[1].size(), 1u);
}

TEST(PartitionTest, SpeedupBudgetReducesCores) {
  // With a 2x budget both tasks fit one core; without it they need two.
  PartitionOptions fast;
  fast.hi_speedup = 2.0;
  PartitionOptions slow;
  slow.hi_speedup = 1.0;
  EXPECT_EQ(cores_needed(two_heavy_tasks(), 4, fast), std::optional<std::size_t>(1));
  EXPECT_EQ(cores_needed(two_heavy_tasks(), 4, slow), std::optional<std::size_t>(2));
}

TEST(PartitionTest, EveryCoreRespectsBudgets) {
  Rng rng(31);
  GenParams params;
  params.u_bound = 0.9;
  const auto skeleton = generate_task_set(params, rng);
  ASSERT_TRUE(skeleton.has_value());
  const TaskSet set = skeleton->materialize(0.6, 2.0);

  PartitionOptions options;
  options.hi_speedup = 1.5;
  options.max_reset = 5000.0;
  const auto cores = cores_needed(set, 8, options);
  ASSERT_TRUE(cores.has_value());
  const PartitionResult r = partition_first_fit(set, *cores, options);
  ASSERT_TRUE(r.feasible);

  std::size_t assigned = 0;
  for (std::size_t c = 0; c < r.assignment.size(); ++c) {
    assigned += r.assignment[c].size();
    if (r.assignment[c].empty()) continue;
    std::vector<McTask> tasks;
    for (std::size_t idx : r.assignment[c]) tasks.push_back(set[idx]);
    const TaskSet core(tasks);
    EXPECT_TRUE(lo_mode_schedulable(core)) << "core " << c;
    EXPECT_LE(min_speedup_value(core), options.hi_speedup + 1e-9) << "core " << c;
    EXPECT_LE(resetting_time_value(core, options.hi_speedup), options.max_reset + 1e-9);
    EXPECT_NEAR(r.core_s_min[c], min_speedup_value(core), 1e-12);
  }
  EXPECT_EQ(assigned, set.size());  // every task placed exactly once
}

TEST(PartitionTest, RejectedTaskReported) {
  PartitionOptions options;
  options.hi_speedup = 1.0;
  const PartitionResult r = partition_first_fit(two_heavy_tasks(), 1, options);
  ASSERT_FALSE(r.feasible);
  ASSERT_TRUE(r.rejected_task.has_value());
}

TEST(PartitionTest, DecreasingNeverNeedsMoreCoresOnTheseSets) {
  // FFD is a heuristic; on these workloads it should not lose to plain FF.
  Rng rng(32);
  GenParams params;
  params.u_bound = 0.8;
  for (int trial = 0; trial < 5; ++trial) {
    const auto skeleton = generate_task_set(params, rng);
    if (!skeleton) continue;
    const TaskSet set = skeleton->materialize(0.7, 2.0);
    PartitionOptions ffd;
    PartitionOptions ff;
    ff.decreasing = false;
    const auto c1 = cores_needed(set, 8, ffd);
    const auto c2 = cores_needed(set, 8, ff);
    if (c1 && c2) EXPECT_LE(*c1, *c2 + 1);  // allow one-core slack for FF luck
  }
}

TEST(PartitionTest, FmsFitsOneCoreAtTwoX) {
  const TaskSet fms = fms_task_set(2.0).materialize(0.5, 2.0);
  PartitionOptions options;
  options.hi_speedup = 2.0;
  EXPECT_EQ(cores_needed(fms, 4, options), std::optional<std::size_t>(1));
}

}  // namespace
}  // namespace rbs

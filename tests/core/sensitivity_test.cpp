// Tests for the sensitivity analyses (gamma and uniform WCET inflation).
#include "core/sensitivity.hpp"

#include <gtest/gtest.h>

#include "core/edf.hpp"
#include "core/speedup.hpp"
#include "gen/fms.hpp"
#include "gen/paper_examples.hpp"

namespace rbs {
namespace {

TEST(ScaleHiWcetsTest, ScalesAndClamps) {
  const TaskSet set = table1_base();  // tau1: C(LO)=3, D(HI)=7
  const TaskSet g1 = scale_hi_wcets(set, 1.0);
  EXPECT_EQ(g1[0].wcet(Mode::HI), 3);
  const TaskSet g2 = scale_hi_wcets(set, 2.0);
  EXPECT_EQ(g2[0].wcet(Mode::HI), 6);
  const TaskSet g9 = scale_hi_wcets(set, 9.0);
  EXPECT_EQ(g9[0].wcet(Mode::HI), 7);  // clamped at D(HI)
  // LO tasks untouched.
  EXPECT_EQ(g9[1].wcet(Mode::HI), 2);
}

TEST(ScaleHiWcetsTest, SpeedupMonotoneInGamma) {
  const TaskSet set = table1_base();
  double prev = 0.0;
  for (double gamma : {1.0, 1.3, 5.0 / 3.0, 2.0}) {
    const double s = min_speedup_value(scale_hi_wcets(set, gamma));
    EXPECT_GE(s, prev - 1e-12) << "gamma=" << gamma;
    prev = s;
  }
}

TEST(MaxGammaTest, ConsistentWithDirectCheck) {
  const TaskSet set = table1_base();
  const auto gamma = max_tolerable_gamma(set, 2.0);
  ASSERT_TRUE(gamma.has_value());
  EXPECT_TRUE(hi_mode_schedulable(scale_hi_wcets(set, *gamma), 2.0));
  // C(HI) saturates at D(HI) = 7 (gamma ~ 7/3); once saturated, larger gamma
  // changes nothing, so the search may hit its ceiling -- that is the
  // "insensitive beyond the ceiling" answer.
  EXPECT_GE(*gamma, 7.0 / 3.0 - 1e-3);
}

TEST(MaxGammaTest, TightSpeedGivesSmallGamma) {
  const TaskSet set = table1_base();  // s_min(gamma=5/3... base C(HI)=5) = 4/3
  // At exactly s = s_min the current gamma = 5/3 is the limit unless demand
  // is insensitive; the result must at least include gamma = 1.
  const auto gamma = max_tolerable_gamma(set, 4.0 / 3.0);
  ASSERT_TRUE(gamma.has_value());
  EXPECT_GE(*gamma, 5.0 / 3.0 - 1e-3);  // the set itself is feasible
  // And infeasible speed: below s_min(gamma=1).
  const double s_floor = min_speedup_value(scale_hi_wcets(set, 1.0));
  EXPECT_FALSE(max_tolerable_gamma(set, s_floor * 0.5).has_value());
}

TEST(MaxGammaTest, FmsToleratesSubstantialUncertaintyAtTwoX) {
  const TaskSet fms = fms_task_set(1.0).materialize(0.6, 2.0);
  const auto gamma = max_tolerable_gamma(fms, 2.0);
  ASSERT_TRUE(gamma.has_value());
  EXPECT_GT(*gamma, 1.5);  // 2x speedup buys real certification headroom
}

TEST(MaxInflationTest, ConsistentAndMonotone) {
  const TaskSet set = table1_base();
  const auto a2 = max_wcet_inflation(set, 2.0);
  const auto a15 = max_wcet_inflation(set, 1.5);
  ASSERT_TRUE(a2.has_value());
  ASSERT_TRUE(a15.has_value());
  EXPECT_GE(*a2 + 1e-9, *a15);  // more speedup tolerates more inflation
  EXPECT_GE(*a2, 1.0);
}

TEST(MaxInflationTest, InfeasibleBaseRejected) {
  // LO-mode infeasible from the start.
  const TaskSet bad({McTask::lo("a", 2, 2, 50), McTask::lo("b", 2, 2, 50)});
  EXPECT_FALSE(max_wcet_inflation(bad, 4.0).has_value());
}

TEST(MaxInflationTest, BoundIsSharp) {
  const TaskSet set = table1_base();
  const auto alpha = max_wcet_inflation(set, 2.0, {1e-4, 64.0});
  ASSERT_TRUE(alpha.has_value());
  ASSERT_LT(*alpha, 64.0);  // LO mode must cap it well below the ceiling
  const TaskSet at = inflate_wcets(set, *alpha);
  EXPECT_TRUE(lo_mode_schedulable(at));
  EXPECT_TRUE(hi_mode_schedulable(at, 2.0));
}

TEST(InflateWcetsTest, ScalesBothModesAndClamps) {
  const TaskSet set = table1_base();
  const TaskSet doubled = inflate_wcets(set, 2.0);
  // tau1: C(LO) 3 -> clamp(6, [1, D(LO)=4]) = 4; C(HI) 5 -> clamp(10, D(HI)=7) = 7.
  EXPECT_EQ(doubled[0].wcet(Mode::LO), 4);
  EXPECT_EQ(doubled[0].wcet(Mode::HI), 7);
  // tau2: C 2 -> 4 (fits D(LO)=5).
  EXPECT_EQ(doubled[1].wcet(Mode::LO), 4);
}

}  // namespace
}  // namespace rbs

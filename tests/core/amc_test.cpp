// Tests for the AMC-rtb fixed-priority baseline.
#include "core/amc.hpp"

#include <gtest/gtest.h>

#include "core/speedup.hpp"
#include "core/tuning.hpp"
#include "gen/rng.hpp"
#include "gen/taskgen.hpp"

namespace rbs {
namespace {

TEST(ResponseTimeTest, NoInterference) {
  EXPECT_EQ(response_time_recurrence(3, {}, {}, 100), std::optional<Ticks>(3));
}

TEST(ResponseTimeTest, ClassicExample) {
  // Task under analysis C=2 with hp tasks (C=1,T=4) and (C=2,T=6):
  // R = 2 + 1 + 2 = 5 -> ceil(5/4)=2, ceil(5/6)=1 -> 2+2+2=6 -> 6/4->2, 6/6->1
  // -> 2+2+2=6 converged.
  EXPECT_EQ(response_time_recurrence(2, {1, 2}, {4, 6}, 100), std::optional<Ticks>(6));
}

TEST(ResponseTimeTest, DivergesPastBound) {
  // Utilization 1 from hp task alone: never converges within the bound.
  EXPECT_EQ(response_time_recurrence(1, {4}, {4}, 50), std::nullopt);
}

TEST(AmcTest, EasySetAccepted) {
  const ImplicitSet set({
      {"h", Criticality::HI, 10, 2, 4},
      {"l", Criticality::LO, 20, 4, 4},
  });
  EXPECT_TRUE(amc_rtb_schedulable(set).schedulable);
}

TEST(AmcTest, LoModeOverloadRejectedWithWitness) {
  const ImplicitSet set({
      {"a", Criticality::LO, 10, 6, 6},
      {"b", Criticality::LO, 10, 6, 6},
  });
  const AmcResult r = amc_rtb_schedulable(set);
  EXPECT_FALSE(r.schedulable);
  EXPECT_EQ(r.failing_task, "b");  // the lower-priority of the two
}

TEST(AmcTest, HiModeOverloadRejected) {
  // Fits at C(LO) but not at C(HI).
  const ImplicitSet set({
      {"h1", Criticality::HI, 10, 2, 8},
      {"h2", Criticality::HI, 12, 2, 8},
  });
  const AmcResult r = amc_rtb_schedulable(set);
  EXPECT_FALSE(r.schedulable);
  EXPECT_EQ(r.failing_task, "h2");
}

TEST(AmcTest, LoCarryOverInterferenceCounted) {
  // The HI task alone fits in HI mode; a higher-priority LO task's
  // pre-switch interference can still break it.
  const ImplicitSet with_lo({
      {"l", Criticality::LO, 4, 2, 2},
      {"h", Criticality::HI, 10, 3, 8},
  });
  EXPECT_FALSE(amc_rtb_schedulable(with_lo).schedulable);
  const ImplicitSet without_lo({{"h", Criticality::HI, 10, 3, 8}});
  EXPECT_TRUE(amc_rtb_schedulable(without_lo).schedulable);
}

TEST(AmcTest, RateMonotonicOrderMatters) {
  // A short-period HI task must preempt the long-period LO task, not vice
  // versa; the analysis must order by period regardless of input order.
  const ImplicitSet set({
      {"slow_lo", Criticality::LO, 100, 40, 40},
      {"fast_hi", Criticality::HI, 10, 2, 4},
  });
  EXPECT_TRUE(amc_rtb_schedulable(set).schedulable);
}

TEST(AmcTest, NeverAcceptsWhatEdfDemandBoundRejectsAtSameModel) {
  // EDF is optimal on a uniprocessor: whenever AMC (FP, termination model)
  // accepts, the EDF demand-bound test with termination must accept at
  // speedup <= 1... strictly speaking the EDF test also needs x tuning; use
  // the utilization x rule and check the implication AMC => EDF-schedulable.
  Rng rng(123);
  GenParams params;
  params.u_bound = 0.7;
  int amc_accepts = 0;
  for (int i = 0; i < 60; ++i) {
    const auto skeleton = generate_task_set(params, rng);
    if (!skeleton) continue;
    if (!amc_rtb_schedulable(*skeleton).schedulable) continue;
    ++amc_accepts;
    const MinXResult mx = min_x_for_lo(*skeleton);
    ASSERT_TRUE(mx.feasible);
    EXPECT_LE(min_speedup_value(skeleton->materialize_terminating(mx.x)), 1.0 + 1e-9)
        << "AMC accepted a set the EDF demand-bound test needs speedup for";
  }
  EXPECT_GT(amc_accepts, 5);
}

}  // namespace
}  // namespace rbs

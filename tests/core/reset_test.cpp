// Tests for the service resetting time (Theorem 4 / Corollary 5).
#include "core/reset.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/adb.hpp"
#include "gen/paper_examples.hpp"
#include "gen/rng.hpp"
#include "gen/taskgen.hpp"

namespace rbs {
namespace {

TEST(ResetTest, Table1AtSpeedTwoIsSix) {
  // Example 2: "if s is increased to 2, then the service resetting time can
  // be reduced to 6".
  const ResetResult r = resetting_time(table1_base(), 2.0);
  EXPECT_TRUE(r.exact);
  EXPECT_NEAR(r.delta_r, 6.0, 1e-9);
}

TEST(ResetTest, Table1AtMinimumSpeedupIsNine) {
  EXPECT_NEAR(resetting_time_value(table1_base(), 4.0 / 3.0), 9.0, 1e-9);
}

TEST(ResetTest, HandComputedCrossingInsideSegment) {
  // tau1 of Table I alone at s = 2: ADB is the constant 5 on [0, 3) (one
  // full C(HI), carry-over residual not yet due), so the supply line 2*Delta
  // crosses mid-segment at Delta = 2.5.
  const TaskSet set({McTask::hi("h", 3, 5, 4, 7, 7)});
  EXPECT_NEAR(resetting_time_value(set, 2.0), 2.5, 1e-9);
}

TEST(ResetTest, MonotoneDecreasingInSpeed) {
  const TaskSet set = table1_base();
  double prev = std::numeric_limits<double>::infinity();
  for (double s : {1.1, 4.0 / 3.0, 1.5, 2.0, 2.5, 3.0, 4.0}) {
    const double dr = resetting_time_value(set, s);
    EXPECT_LE(dr, prev + 1e-9) << "s=" << s;
    EXPECT_TRUE(std::isfinite(dr)) << "s=" << s;
    prev = dr;
  }
}

TEST(ResetTest, InfiniteAtOrBelowHiUtilization) {
  const TaskSet set = table1_base();
  const double u_hi = set.total_utilization(Mode::HI);
  EXPECT_TRUE(std::isinf(resetting_time_value(set, u_hi)));
  EXPECT_TRUE(std::isinf(resetting_time_value(set, 0.5 * u_hi)));
  EXPECT_TRUE(std::isfinite(resetting_time_value(set, u_hi + 0.05)));
}

TEST(ResetTest, EmptySetResetsImmediately) {
  EXPECT_DOUBLE_EQ(resetting_time_value(TaskSet{}, 1.0), 0.0);
}

TEST(ResetTest, AllDroppedCarryOverOnly) {
  // Only the carry-over jobs need to finish: Delta_R = sum C / s.
  const TaskSet set({McTask::lo_terminated("a", 2, 10, 10),
                     McTask::lo_terminated("b", 3, 20, 20)});
  EXPECT_NEAR(resetting_time_value(set, 2.0), 5.0 / 2.0, 1e-9);
  // Discarding the carry-over makes the reset instantaneous.
  ResetOptions opt;
  opt.discard_dropped_carryover = true;
  EXPECT_DOUBLE_EQ(resetting_time(set, 2.0, opt).delta_r, 0.0);
}

TEST(ResetTest, DiscardingCarryOverNeverDelaysReset) {
  const TaskSet set({McTask::hi("h", 3, 5, 4, 7, 7),
                     McTask::lo_terminated("l", 2, 15, 15)});
  ResetOptions discard;
  discard.discard_dropped_carryover = true;
  for (double s : {1.0, 1.5, 2.0, 3.0})
    EXPECT_LE(resetting_time(set, s, discard).delta_r,
              resetting_time(set, s).delta_r + 1e-9);
}

TEST(ResetTest, DegradationShortensReset) {
  // Example 2: "if service degradation is enabled in parallel to processor
  // speedup, the service resetting time can be further reduced".
  for (double s : {1.5, 2.0, 3.0})
    EXPECT_LE(resetting_time_value(table1_degraded(), s),
              resetting_time_value(table1_base(), s) + 1e-9);
}

TEST(ResetTest, ResultSatisfiesDefinition) {
  // At the reported Delta_R the condition ADB <= s*Delta holds (evaluating
  // the piecewise-linear ADB by interpolation between integer breakpoints),
  // and it fails at every earlier integer point (minimality).
  const TaskSet set = table1_base();
  for (double s : {4.0 / 3.0, 1.7, 2.0, 2.9}) {
    const double dr = resetting_time_value(set, s);
    ASSERT_TRUE(std::isfinite(dr));
    const auto lo = static_cast<Ticks>(std::floor(dr));
    const auto hi = static_cast<Ticks>(std::ceil(dr));
    double adb_at_dr;
    if (lo == hi) {
      adb_at_dr = static_cast<double>(adb_hi_total(set, lo));
    } else {
      // Breakpoints are integral, so ADB is linear on (lo, hi): interpolate
      // between the value at lo and the left limit at hi.
      const auto v0 = static_cast<double>(adb_hi_total(set, lo));
      const auto v1 = static_cast<double>(adb_hi_total_left(set, hi));
      adb_at_dr = v0 + (v1 - v0) * (dr - static_cast<double>(lo));
    }
    EXPECT_LE(adb_at_dr, s * dr + 1e-6) << "s=" << s;
    // ...and the condition fails strictly before Delta_R.
    for (Ticks d = 0; d < lo; ++d)
      EXPECT_GT(static_cast<double>(adb_hi_total(set, d)), s * static_cast<double>(d) - 1e-6)
          << "s=" << s << " d=" << d;
  }
}

TEST(ResetTest, RandomSetsFiniteAboveUtilization) {
  Rng rng(11);
  GenParams params;
  params.u_bound = 0.6;
  for (int trial = 0; trial < 20; ++trial) {
    const auto skeleton = generate_task_set(params, rng);
    if (!skeleton) continue;
    const TaskSet set = skeleton->materialize(0.5, 2.0);
    const double u_hi = set.total_utilization(Mode::HI);
    const ResetResult r = resetting_time(set, u_hi + 0.3);
    EXPECT_TRUE(r.exact);
    EXPECT_TRUE(std::isfinite(r.delta_r));
    EXPECT_GT(r.delta_r, 0.0);
  }
}

TEST(ResetTest, HigherSpeedupHelpsOnRandomSets) {
  Rng rng(13);
  GenParams params;
  params.u_bound = 0.5;
  for (int trial = 0; trial < 10; ++trial) {
    const auto skeleton = generate_task_set(params, rng);
    if (!skeleton) continue;
    const TaskSet set = skeleton->materialize(0.5, 2.0);
    EXPECT_LE(resetting_time_value(set, 3.0), resetting_time_value(set, 2.0) + 1e-9);
  }
}

}  // namespace
}  // namespace rbs

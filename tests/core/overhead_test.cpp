// Tests for runtime-overhead accounting.
#include "core/overhead.hpp"

#include <gtest/gtest.h>

#include "core/edf.hpp"
#include "core/speedup.hpp"
#include "gen/paper_examples.hpp"

namespace rbs {
namespace {

TEST(OverheadTest, ZeroOverheadIsIdentity) {
  const auto inflated = inflate_for_overheads(table1_base(), {});
  ASSERT_TRUE(inflated.has_value());
  for (std::size_t i = 0; i < inflated->size(); ++i)
    EXPECT_EQ(describe((*inflated)[i]), describe(table1_base()[i]));
}

TEST(OverheadTest, ContextSwitchChargedTwicePerJob) {
  OverheadModel model;
  model.context_switch = 1;
  // tau1 C(LO)=3 -> 5 > D(LO)=4: infeasible at this overhead.
  EXPECT_FALSE(inflate_for_overheads(table1_base(), model).has_value());

  // A roomier set absorbs it.
  const TaskSet roomy({McTask::hi("h", 2, 4, 10, 20, 20), McTask::lo("l", 3, 15, 15)});
  const auto inflated = inflate_for_overheads(roomy, model);
  ASSERT_TRUE(inflated.has_value());
  EXPECT_EQ((*inflated)[0].wcet(Mode::LO), 4);
  EXPECT_EQ((*inflated)[0].wcet(Mode::HI), 6);
  EXPECT_EQ((*inflated)[1].wcet(Mode::LO), 5);
  EXPECT_EQ((*inflated)[1].wcet(Mode::HI), 5);  // LO tasks keep C(HI)=C(LO)
}

TEST(OverheadTest, ModeSwitchChargedToHiWcetsOnly) {
  OverheadModel model;
  model.mode_switch = 2;
  const TaskSet roomy({McTask::hi("h", 2, 4, 10, 20, 20), McTask::lo("l", 3, 15, 15)});
  const auto inflated = inflate_for_overheads(roomy, model);
  ASSERT_TRUE(inflated.has_value());
  EXPECT_EQ((*inflated)[0].wcet(Mode::LO), 2);  // LO-mode WCET untouched
  EXPECT_EQ((*inflated)[0].wcet(Mode::HI), 6);
  EXPECT_EQ((*inflated)[1].wcet(Mode::HI), 3);
}

TEST(OverheadTest, OverheadsOnlyIncreaseSpeedup) {
  OverheadModel model;
  model.context_switch = 0;
  model.mode_switch = 1;
  const auto inflated = inflate_for_overheads(table1_base(), model);
  ASSERT_TRUE(inflated.has_value());
  EXPECT_GE(min_speedup_value(*inflated) + 1e-12, min_speedup_value(table1_base()));
}

TEST(OverheadTest, TerminatedTaskInflatedToo) {
  OverheadModel model;
  model.context_switch = 1;
  const TaskSet set({McTask::lo_terminated("l", 2, 10, 10)});
  const auto inflated = inflate_for_overheads(set, model);
  ASSERT_TRUE(inflated.has_value());
  EXPECT_EQ((*inflated)[0].wcet(Mode::LO), 4);
  EXPECT_TRUE((*inflated)[0].dropped_in_hi());
}

TEST(MaxContextSwitchTest, RoomySetToleratesSome) {
  const TaskSet roomy({McTask::hi("h", 2, 4, 10, 20, 20), McTask::lo("l", 3, 15, 15)});
  const Ticks tol = max_tolerable_context_switch(roomy, 2.0);
  EXPECT_GT(tol, 0);
  // Feasible at the reported value, infeasible one tick above.
  OverheadModel at;
  at.context_switch = tol;
  const auto ok = inflate_for_overheads(roomy, at);
  ASSERT_TRUE(ok.has_value());
  EXPECT_TRUE(system_schedulable(*ok, 2.0));
  OverheadModel above;
  above.context_switch = tol + 1;
  const auto bad = inflate_for_overheads(roomy, above);
  EXPECT_TRUE(!bad.has_value() || !system_schedulable(*bad, 2.0));
}

TEST(MaxContextSwitchTest, InfeasibleBaseGivesMinusOne) {
  const TaskSet bad({McTask::lo("a", 2, 2, 50), McTask::lo("b", 2, 2, 50)});
  EXPECT_EQ(max_tolerable_context_switch(bad, 4.0), -1);
}

TEST(MaxContextSwitchTest, TightSetToleratesNothing) {
  // tau1's C(LO)=3 already fills most of D(LO)=4: one tick of 2*delta
  // overshoots the deadline.
  EXPECT_EQ(max_tolerable_context_switch(table1_base(), 2.0), 0);
}

}  // namespace
}  // namespace rbs

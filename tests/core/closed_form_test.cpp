// Tests for the Section V closed formulas (Lemmas 6 and 7) and the
// implicit-deadline materialisers (Eqs. 13-14).
#include "core/closed_form.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/reset.hpp"
#include "core/speedup.hpp"
#include "gen/rng.hpp"
#include "gen/taskgen.hpp"

namespace rbs {
namespace {

ImplicitSet example_set() {
  return ImplicitSet({
      {"h1", Criticality::HI, 20, 4, 8},
      {"h2", Criticality::HI, 50, 5, 15},
      {"l1", Criticality::LO, 25, 5, 5},
      {"l2", Criticality::LO, 40, 4, 4},
  });
}

TEST(ImplicitSetTest, UtilizationAccessors) {
  const ImplicitSet set = example_set();
  EXPECT_NEAR(set.u_total_lo(), 4.0 / 20 + 5.0 / 50 + 5.0 / 25 + 4.0 / 40, 1e-12);
  EXPECT_NEAR(set.u_hi_hi(), 8.0 / 20 + 15.0 / 50, 1e-12);
  EXPECT_NEAR(set.u_lo_lo(), 5.0 / 25 + 4.0 / 40, 1e-12);
}

TEST(ImplicitSetTest, RejectsIllFormedTasks) {
  EXPECT_THROW(ImplicitSet({{"t", Criticality::HI, 10, 5, 4}}), std::invalid_argument);
  EXPECT_THROW(ImplicitSet({{"t", Criticality::HI, 10, 5, 12}}), std::invalid_argument);
  EXPECT_THROW(ImplicitSet({{"t", Criticality::LO, 10, 4, 5}}), std::invalid_argument);
}

TEST(ImplicitSetTest, MaterializeAppliesFactors) {
  const TaskSet set = example_set().materialize(0.5, 2.0);
  const McTask& h1 = set[0];
  EXPECT_EQ(h1.deadline(Mode::LO), 10);  // x * T = 0.5 * 20
  EXPECT_EQ(h1.deadline(Mode::HI), 20);  // implicit
  const McTask& l1 = set[2];
  EXPECT_EQ(l1.deadline(Mode::HI), 50);  // y * T = 2 * 25
  EXPECT_EQ(l1.period(Mode::HI), 50);
  EXPECT_EQ(l1.deadline(Mode::LO), 25);
}

TEST(ImplicitSetTest, MaterializeClampsDeadlineAboveWcet) {
  // x*T below C(LO) would be infeasible; the materialiser clamps.
  const ImplicitSet set({{"h", Criticality::HI, 10, 6, 8}});
  const TaskSet out = set.materialize(0.1, 1.0);
  EXPECT_EQ(out[0].deadline(Mode::LO), 6);
}

TEST(ImplicitSetTest, MaterializeTerminatingDropsLoTasks) {
  const TaskSet set = example_set().materialize_terminating(0.5);
  EXPECT_TRUE(set[2].dropped_in_hi());
  EXPECT_TRUE(set[3].dropped_in_hi());
  EXPECT_FALSE(set[0].dropped_in_hi());
}

TEST(Lemma6Test, UpperBoundsExactSpeedup) {
  const ImplicitSet skel = example_set();
  for (double x : {0.3, 0.5, 0.7, 0.9})
    for (double y : {1.0, 1.5, 2.0, 4.0}) {
      const TaskSet set = skel.materialize(x, y);
      const double exact = min_speedup_value(set);
      // Per-task effective factors account for integer rounding exactly.
      const double bound = lemma6_speedup_bound(set);
      EXPECT_GE(bound + 1e-9, exact) << "x=" << x << " y=" << y;
    }
}

TEST(Lemma6Test, ScalarFormulaMatchesPerTaskOnExactFactors) {
  // Periods divisible enough that x*T and y*T are integers: both variants of
  // the formula must agree to rounding error.
  const ImplicitSet skel({
      {"h1", Criticality::HI, 20, 4, 8},
      {"l1", Criticality::LO, 40, 4, 4},
  });
  for (double x : {0.25, 0.5, 0.75})
    for (double y : {1.0, 1.5, 2.0}) {
      const double scalar = lemma6_speedup_bound(skel, x, y);
      const double per_task = lemma6_speedup_bound(skel.materialize(x, y));
      EXPECT_NEAR(scalar, per_task, 1e-12) << "x=" << x << " y=" << y;
    }
}

TEST(Lemma6Test, MonotoneTrends) {
  // "s_min will monotonically decrease with decreasing x and/or increasing y"
  const ImplicitSet skel = example_set();
  double prev = 1e300;
  for (double x : {0.9, 0.7, 0.5, 0.3}) {
    const double b = lemma6_speedup_bound(skel, x, 2.0);
    EXPECT_LT(b, prev);
    prev = b;
  }
  prev = 1e300;
  for (double y : {1.0, 1.5, 2.0, 4.0, 16.0}) {
    const double b = lemma6_speedup_bound(skel, 0.5, y);
    EXPECT_LT(b, prev);
    prev = b;
  }
}

TEST(Lemma6Test, NoDegradationLoTermIsOne) {
  // At y = 1 every LO task contributes exactly 1 (its carry-over job may be
  // due immediately after the switch).
  const ImplicitSet lo_only({{"l", Criticality::LO, 25, 5, 5}});
  EXPECT_NEAR(lemma6_speedup_bound(lo_only, 0.5, 1.0), 1.0, 1e-12);
}

TEST(Lemma6Test, TerminationDropsLoTerms) {
  const ImplicitSet skel = example_set();
  const TaskSet term = skel.materialize_terminating(0.5);
  ImplicitSet hi_only({skel.tasks()[0], skel.tasks()[1]});
  EXPECT_NEAR(lemma6_speedup_bound(term), lemma6_speedup_bound(hi_only, 0.5, 1.0), 1e-12);
}

TEST(Lemma6Test, RejectsNonImplicitSets) {
  const TaskSet constrained({McTask::hi("h", 2, 4, 5, 8, 10)});
  EXPECT_THROW(lemma6_speedup_bound(constrained), std::invalid_argument);
}

TEST(Lemma7Test, UpperBoundsExactResetTime) {
  const ImplicitSet skel = example_set();
  for (double x : {0.4, 0.6})
    for (double y : {1.5, 2.0})
      for (double s : {2.0, 3.0, 4.0}) {
        const TaskSet set = skel.materialize(x, y);
        const double exact = resetting_time(set, s).delta_r;
        const double bound = lemma7_reset_bound(set, s);
        if (std::isinf(bound)) continue;  // s <= s_bar: bound is vacuous
        EXPECT_GE(bound + 1e-9, exact) << "x=" << x << " y=" << y << " s=" << s;
      }
}

TEST(Lemma7Test, InfiniteAtOrBelowSbar) {
  const ImplicitSet skel = example_set();
  const double s_bar = lemma6_speedup_bound(skel, 0.5, 2.0);
  EXPECT_TRUE(std::isinf(lemma7_reset_bound(skel, 0.5, 2.0, s_bar)));
  EXPECT_TRUE(std::isinf(lemma7_reset_bound(skel, 0.5, 2.0, s_bar * 0.9)));
  EXPECT_TRUE(std::isfinite(lemma7_reset_bound(skel, 0.5, 2.0, s_bar + 0.5)));
}

TEST(Lemma7Test, RawFormula) {
  EXPECT_NEAR(lemma7_reset_bound_raw(/*total_c_hi=*/30.0, /*s_min=*/1.5, /*s=*/2.0), 60.0,
              1e-12);
  EXPECT_TRUE(std::isinf(lemma7_reset_bound_raw(30.0, 2.0, 2.0)));
}

TEST(Lemma7Test, GainFromHigherSpeedup) {
  // Fig. 4b's trend: Delta_R shrinks as s grows, explodes as s -> s_min.
  double prev = std::numeric_limits<double>::infinity();
  for (double s = 1.6; s <= 4.0; s += 0.2) {
    const double dr = lemma7_reset_bound_raw(20.0, 1.5, s);
    EXPECT_LT(dr, prev);
    prev = dr;
  }
}

TEST(Lemma7Test, BoundHoldsOnRandomImplicitSets) {
  Rng rng(99);
  GenParams params;
  params.u_bound = 0.55;
  int tested = 0;
  for (int trial = 0; trial < 40 && tested < 15; ++trial) {
    const auto skeleton = generate_task_set(params, rng);
    if (!skeleton) continue;
    const TaskSet set = skeleton->materialize(0.6, 2.0);
    const double bound = lemma7_reset_bound(set, 3.0);
    if (std::isinf(bound)) continue;
    ++tested;
    EXPECT_GE(bound + 1e-9, resetting_time(set, 3.0).delta_r);
  }
  EXPECT_GT(tested, 0);
}

}  // namespace
}  // namespace rbs

// Unit tests for the dual-criticality task model (Section II constraints).
#include "core/task.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace rbs {
namespace {

McTask valid_hi() { return McTask::hi("h", 2, 4, 5, 10, 10); }
McTask valid_lo() { return McTask::lo("l", 3, 12, 12); }

TEST(McTaskTest, HiFactorySetsBothModes) {
  const McTask t = valid_hi();
  EXPECT_EQ(t.criticality(), Criticality::HI);
  EXPECT_TRUE(t.is_hi());
  EXPECT_EQ(t.wcet(Mode::LO), 2);
  EXPECT_EQ(t.wcet(Mode::HI), 4);
  EXPECT_EQ(t.deadline(Mode::LO), 5);
  EXPECT_EQ(t.deadline(Mode::HI), 10);
  EXPECT_EQ(t.period(Mode::LO), 10);
  EXPECT_EQ(t.period(Mode::HI), 10);
  EXPECT_TRUE(t.validate().empty());
}

TEST(McTaskTest, LoFactoryKeepsServiceByDefault) {
  const McTask t = valid_lo();
  EXPECT_FALSE(t.is_hi());
  EXPECT_EQ(t.deadline(Mode::HI), 12);
  EXPECT_EQ(t.period(Mode::HI), 12);
  EXPECT_FALSE(t.dropped_in_hi());
  EXPECT_TRUE(t.validate().empty());
}

TEST(McTaskTest, LoDegradedService) {
  const McTask t = McTask::lo("l", 3, 10, 10, 15, 20);
  EXPECT_EQ(t.deadline(Mode::HI), 15);
  EXPECT_EQ(t.period(Mode::HI), 20);
  EXPECT_EQ(t.deadline_extension(), 5);
  EXPECT_TRUE(t.validate().empty());
}

TEST(McTaskTest, TerminatedLoTaskIsDropped) {
  const McTask t = McTask::lo_terminated("l", 3, 10, 10);
  EXPECT_TRUE(t.dropped_in_hi());
  EXPECT_EQ(t.utilization(Mode::HI), 0.0);
  EXPECT_GT(t.utilization(Mode::LO), 0.0);
  EXPECT_TRUE(t.validate().empty());
}

TEST(McTaskTest, UtilizationIsWcetOverPeriod) {
  const McTask t = valid_hi();
  EXPECT_DOUBLE_EQ(t.utilization(Mode::LO), 0.2);
  EXPECT_DOUBLE_EQ(t.utilization(Mode::HI), 0.4);
}

TEST(McTaskValidateTest, HiTaskLoDeadlineAboveHiDeadline) {
  const McTask t = McTask::hi("h", 2, 4, 11, 10, 12);
  EXPECT_FALSE(t.validate().empty());
}

TEST(McTaskValidateTest, HiTaskWcetMustNotDecrease) {
  const McTask t = McTask::hi("h", 5, 4, 5, 10, 10);
  EXPECT_FALSE(t.validate().empty());
}

TEST(McTaskValidateTest, ConstrainedDeadlineEnforced) {
  const McTask t = McTask::hi("h", 2, 4, 5, 12, 10);  // D(HI) > T
  EXPECT_FALSE(t.validate().empty());
}

TEST(McTaskValidateTest, WcetMustFitDeadline) {
  const McTask t = McTask::hi("h", 6, 6, 5, 10, 10);  // C(LO) > D(LO)
  EXPECT_FALSE(t.validate().empty());
}

TEST(McTaskValidateTest, ZeroParametersRejected) {
  EXPECT_FALSE(McTask::lo("l", 0, 10, 10).validate().empty());
  EXPECT_FALSE(McTask::lo("l", 1, 0, 10).validate().empty());
}

TEST(McTaskValidateTest, DegradedServiceMustNotImprove) {
  // T(HI) < T(LO) violates Eq. (2).
  const McTask t = McTask::lo("l", 3, 10, 10, 10, 5);
  EXPECT_FALSE(t.validate().empty());
}

TEST(TaskSetTest, ConstructorRejectsInvalidTasks) {
  EXPECT_THROW(TaskSet({McTask::hi("h", 5, 4, 5, 10, 10)}), std::invalid_argument);
}

TEST(TaskSetTest, UtilizationAggregates) {
  const TaskSet set({valid_hi(), valid_lo()});
  EXPECT_DOUBLE_EQ(set.utilization(Criticality::HI, Mode::LO), 0.2);
  EXPECT_DOUBLE_EQ(set.utilization(Criticality::HI, Mode::HI), 0.4);
  EXPECT_DOUBLE_EQ(set.utilization(Criticality::LO, Mode::LO), 0.25);
  EXPECT_DOUBLE_EQ(set.total_utilization(Mode::LO), 0.45);
  EXPECT_EQ(set.hi_count(), 1u);
  EXPECT_EQ(set.total_hi_wcet(), 7);
}

TEST(TaskSetTest, TotalHiWcetExcludesDroppedTasks) {
  const TaskSet set({valid_hi(), McTask::lo_terminated("l", 3, 12, 12)});
  EXPECT_EQ(set.total_hi_wcet(), 4);
}

TEST(TaskSetTest, DescribeMentionsNameAndCriticality) {
  const std::string text = describe(valid_hi());
  EXPECT_NE(text.find("h"), std::string::npos);
  EXPECT_NE(text.find("HI"), std::string::npos);
}

}  // namespace
}  // namespace rbs

// Tests for discrete DVFS level selection and the boost-energy model.
#include "core/dvfs.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "core/reset.hpp"
#include "gen/paper_examples.hpp"

namespace rbs {
namespace {

TEST(FrequencyMenuTest, CubicPowersAndSorting) {
  const FrequencyMenu menu = FrequencyMenu::cubic({2.0, 1.0, 1.5});
  ASSERT_EQ(menu.levels().size(), 3u);
  EXPECT_DOUBLE_EQ(menu.levels()[0].speed, 1.0);
  EXPECT_DOUBLE_EQ(menu.levels()[1].speed, 1.5);
  EXPECT_DOUBLE_EQ(menu.levels()[2].speed, 2.0);
  EXPECT_DOUBLE_EQ(menu.levels()[2].power, 8.0);
}

TEST(FrequencyMenuTest, RejectsNonPositiveSpeed) {
  EXPECT_THROW(FrequencyMenu({{0.0, 1.0}}), std::invalid_argument);
  EXPECT_THROW(FrequencyMenu({{1.0, -1.0}}), std::invalid_argument);
}

TEST(MinFeasibleLevelTest, PicksSlowestCoveringSmin) {
  // s_min = 4/3: levels 1.0 infeasible, 1.5 feasible.
  const FrequencyMenu menu = FrequencyMenu::cubic({1.0, 1.5, 2.0});
  const LevelChoice c = min_feasible_level(table1_base(), menu);
  ASSERT_TRUE(c.feasible);
  EXPECT_DOUBLE_EQ(c.level.speed, 1.5);
  EXPECT_NEAR(c.delta_r, resetting_time_value(table1_base(), 1.5), 1e-9);
}

TEST(MinFeasibleLevelTest, InfeasibleWhenMenuTooSlow) {
  const FrequencyMenu menu = FrequencyMenu::cubic({1.0, 1.2});
  EXPECT_FALSE(min_feasible_level(table1_base(), menu).feasible);
}

TEST(MinFeasibleLevelTest, DegradedSetRunsAtNominal) {
  // s_min = 12/13 < 1: the nominal level suffices.
  const FrequencyMenu menu = FrequencyMenu::cubic({1.0, 1.5});
  const LevelChoice c = min_feasible_level(table1_degraded(), menu);
  ASSERT_TRUE(c.feasible);
  EXPECT_DOUBLE_EQ(c.level.speed, 1.0);
}

TEST(EnergyOptimalTest, TradesPowerAgainstBoostLength) {
  // For Table I: Delta_R(1.5)=8, Delta_R(2)=6, Delta_R(4)=1.75.
  // Cubic power: 3.375*8=27, 8*6=48, 64*1.75=112 -> slowest level wins.
  const FrequencyMenu cubic = FrequencyMenu::cubic({1.5, 2.0, 4.0});
  const LevelChoice c = energy_optimal_level(table1_base(), cubic);
  ASSERT_TRUE(c.feasible);
  EXPECT_DOUBLE_EQ(c.level.speed, 1.5);

  // With near-flat power the fastest level wins (shortest boost).
  const FrequencyMenu flat({{1.5, 1.0}, {2.0, 1.01}, {4.0, 1.02}});
  const LevelChoice f = energy_optimal_level(table1_base(), flat);
  ASSERT_TRUE(f.feasible);
  EXPECT_DOUBLE_EQ(f.level.speed, 4.0);
}

TEST(EnergyOptimalTest, InteriorOptimumExists) {
  // Construct powers so the middle level minimises power * Delta_R:
  // Delta_R: 8 @1.5, 6 @2, 1.75 @4. Pick powers 2, 1.5, 10:
  // 16, 9, 17.5 -> middle wins.
  const FrequencyMenu menu({{1.5, 2.0}, {2.0, 1.5}, {4.0, 10.0}});
  const LevelChoice c = energy_optimal_level(table1_base(), menu);
  ASSERT_TRUE(c.feasible);
  EXPECT_DOUBLE_EQ(c.level.speed, 2.0);
  EXPECT_NEAR(c.boost_energy, 9.0, 1e-9);
}

TEST(EnergyOptimalTest, SkipsInfeasibleLevels) {
  // 1.0 is below s_min = 4/3 even though it has the lowest energy.
  const FrequencyMenu menu({{1.0, 0.001}, {2.0, 8.0}});
  const LevelChoice c = energy_optimal_level(table1_base(), menu);
  ASSERT_TRUE(c.feasible);
  EXPECT_DOUBLE_EQ(c.level.speed, 2.0);
}

TEST(EnergyOptimalTest, EmptyMenuInfeasible) {
  EXPECT_FALSE(min_feasible_level(table1_base(), FrequencyMenu({})).feasible);
  EXPECT_FALSE(energy_optimal_level(table1_base(), FrequencyMenu({})).feasible);
}

}  // namespace
}  // namespace rbs

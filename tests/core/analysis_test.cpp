// Tests for the unified Analyzer facade (core/analysis.hpp): the fused
// breakpoint sweep must agree *bit for bit* with the independent
// min_speedup / resetting_time walks it subsumes, across the paper examples,
// dropped-task sets, randomized sets, and the degenerate corners -- and it
// must never visit more breakpoints than the two separate walks combined.
#include "core/analysis.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "core/edf.hpp"
#include "core/reset.hpp"
#include "core/speedup.hpp"
#include "core/tuning.hpp"
#include "gen/paper_examples.hpp"
#include "gen/rng.hpp"
#include "gen/taskgen.hpp"

namespace rbs {
namespace {

constexpr AnalysisParts kFused{.speedup = true, .reset = true, .lo = false};

/// Asserts the fused report of `set` at `speed` matches the two independent
/// legacy walks exactly (values, exactness flags, work counters).
void expect_agreement(const TaskSet& set, double speed) {
  SCOPED_TRACE("speed = " + std::to_string(speed));
  const AnalysisReport fused = Analyzer().analyze(set, speed, kFused).value();
  const SpeedupResult speedup = min_speedup(set);
  const ResetResult reset = resetting_time(set, speed);

  EXPECT_DOUBLE_EQ(fused.s_min, speedup.s_min);
  EXPECT_EQ(fused.s_min_exact, speedup.exact);
  EXPECT_DOUBLE_EQ(fused.s_min_error_bound, speedup.error_bound);
  EXPECT_EQ(fused.s_min_argmax, speedup.argmax);
  EXPECT_DOUBLE_EQ(fused.delta_r, reset.delta_r);
  EXPECT_EQ(fused.delta_r_exact, reset.exact);

  // Work accounting: each sub-analysis is charged what its independent walk
  // would pay, and the merged walk can only save (shared ticks fetched once,
  // settled consumers skip foreign ticks).
  EXPECT_EQ(fused.speedup_breakpoints, speedup.breakpoints_visited);
  EXPECT_EQ(fused.reset_breakpoints, reset.breakpoints_visited);
  EXPECT_LE(fused.fused_breakpoints,
            fused.speedup_breakpoints + fused.reset_breakpoints);
}

TEST(AnalysisFacadeTest, AgreesOnPaperExamples) {
  for (double speed : {4.0 / 3.0, 1.5, 2.0, 3.0}) {
    expect_agreement(table1_base(), speed);
    expect_agreement(table1_degraded(), speed);
  }
}

TEST(AnalysisFacadeTest, PaperNumbersComeOutOfOneCall) {
  // Example 1 (s_min = 4/3) and Example 2 (Delta_R(2) = 6) from one sweep.
  const AnalysisReport r = Analyzer().analyze(table1_base(), 2.0).value();
  EXPECT_NEAR(r.s_min, 4.0 / 3.0, 1e-12);
  EXPECT_NEAR(r.delta_r, 6.0, 1e-12);
  EXPECT_TRUE(r.lo_schedulable);
  EXPECT_TRUE(r.hi_schedulable);  // 2 >= 4/3
  EXPECT_TRUE(r.system_schedulable);
}

TEST(AnalysisFacadeTest, AgreesOnDroppedTaskSets) {
  // LO tasks terminated at the mode switch (gamma = 10 region sets drop all
  // LO service); the implicit Table I skeleton gives a small witness.
  const TaskSet dropped = table1_implicit().materialize_terminating(0.6);
  for (double speed : {1.2, 2.0}) expect_agreement(dropped, speed);

  const TaskSet all_dropped({McTask::lo_terminated("a", 2, 10, 10),
                             McTask::lo_terminated("b", 3, 12, 12)});
  expect_agreement(all_dropped, 1.5);
}

TEST(AnalysisFacadeTest, AgreesWithDiscardedCarryover) {
  const TaskSet dropped = table1_implicit().materialize_terminating(0.6);
  AnalysisLimits limits;
  limits.discard_dropped_carryover = true;
  AnalysisRequest request{dropped, 2.0, 1.0, kFused, limits};
  const AnalysisReport fused = analyze(request).value();
  ResetOptions options;
  options.discard_dropped_carryover = true;
  const ResetResult reset = resetting_time(dropped, 2.0, options);
  EXPECT_DOUBLE_EQ(fused.delta_r, reset.delta_r);
  EXPECT_EQ(fused.reset_breakpoints, reset.breakpoints_visited);
}

TEST(AnalysisFacadeTest, AgreesOnRandomizedSets) {
  Rng rng(2026);
  int analyzed = 0;
  for (int i = 0; i < 200 && analyzed < 40; ++i) {
    GenParams params;
    params.u_bound = 0.3 + 0.2 * static_cast<double>(i % 4);
    const auto skeleton = generate_task_set(params, rng);
    if (!skeleton) continue;
    const MinXResult mx = min_x_for_lo(*skeleton);
    if (!mx.feasible) continue;
    const TaskSet set = skeleton->materialize(mx.x, 2.0);
    SCOPED_TRACE("set " + std::to_string(i));
    expect_agreement(set, 1.1);
    expect_agreement(set, 2.0);
    ++analyzed;
  }
  EXPECT_GE(analyzed, 20);  // the generator must not starve the test
}

TEST(AnalysisFacadeTest, UnpreparedHiTaskGivesInfiniteSmin) {
  // D(LO) == D(HI) with C(HI) > C(LO): positive demand at Delta = 0.
  const TaskSet set({McTask::hi("a", 2, 3, 5, 5, 10)});
  expect_agreement(set, 2.0);
  const AnalysisReport r = Analyzer().analyze(set, 2.0, kFused).value();
  EXPECT_TRUE(std::isinf(r.s_min));
  EXPECT_FALSE(r.hi_schedulable);  // no finite speed suffices
  EXPECT_EQ(r.s_min_argmax, 0);
}

TEST(AnalysisFacadeTest, SpeedBelowUtilizationGivesInfiniteReset) {
  const TaskSet set = table1_base();
  const AnalysisReport r = Analyzer().analyze(set, 0.5, kFused).value();
  EXPECT_GT(r.u_hi, 0.5);  // premise of the corner: s <= U_HI
  EXPECT_TRUE(std::isinf(r.delta_r));
  EXPECT_TRUE(r.delta_r_exact);  // a verdict, not a budget failure
  expect_agreement(set, 0.5);
}

TEST(AnalysisFacadeTest, EmptySetIsTrivial) {
  const AnalysisReport r = Analyzer().analyze(TaskSet{}, 2.0).value();
  EXPECT_DOUBLE_EQ(r.s_min, 0.0);
  EXPECT_DOUBLE_EQ(r.delta_r, 0.0);
  EXPECT_TRUE(r.system_schedulable);
  EXPECT_EQ(r.fused_breakpoints, 0u);
}

TEST(AnalysisFacadeTest, ExhaustedBudgetMatchesLegacyInexactPath) {
  AnalysisLimits limits;
  limits.max_breakpoints = 1;
  AnalysisRequest request{table1_base(), 2.0, 1.0, kFused, limits};
  const AnalysisReport fused = analyze(request).value();
  SpeedupOptions speedup_options;
  speedup_options.max_breakpoints = 1;
  const SpeedupResult speedup = min_speedup(table1_base(), speedup_options);
  ResetOptions reset_options;
  reset_options.max_breakpoints = 1;
  const ResetResult reset = resetting_time(table1_base(), 2.0, reset_options);
  EXPECT_EQ(fused.s_min_exact, speedup.exact);
  EXPECT_DOUBLE_EQ(fused.s_min, speedup.s_min);
  EXPECT_DOUBLE_EQ(fused.s_min_error_bound, speedup.error_bound);
  EXPECT_EQ(fused.delta_r_exact, reset.exact);
  EXPECT_DOUBLE_EQ(fused.delta_r, reset.delta_r);
}

TEST(AnalysisFacadeTest, VerdictsMatchLegacyWrappers) {
  for (const TaskSet& set : {table1_base(), table1_degraded()}) {
    for (double s : {0.9, 1.0, 4.0 / 3.0, 2.0}) {
      const AnalysisReport r = Analyzer().analyze(set, s).value();
      EXPECT_EQ(r.hi_schedulable, hi_mode_schedulable(set, s));
      EXPECT_EQ(r.lo_schedulable, lo_mode_schedulable(set));
      EXPECT_EQ(r.system_schedulable, system_schedulable(set, s));
    }
  }
}

TEST(AnalysisFacadeTest, PartsGateTheVerdicts) {
  // Sub-analyses that were not requested keep conservative defaults.
  const AnalysisReport r =
      Analyzer()
          .analyze(table1_base(), 2.0, {.speedup = false, .reset = true, .lo = false})
          .value();
  EXPECT_FALSE(r.hi_schedulable);
  EXPECT_FALSE(r.lo_schedulable);
  EXPECT_FALSE(r.system_schedulable);
  EXPECT_EQ(r.speedup_breakpoints, 0u);
  EXPECT_NEAR(r.delta_r, 6.0, 1e-12);
}

TEST(AnalysisFacadeTest, RejectsDegenerateRequests) {
  AnalysisRequest request{table1_base(), 0.0, 1.0, kFused, {}};
  EXPECT_FALSE(analyze(request).is_ok());  // reset at speed 0

  request.speed = std::numeric_limits<double>::infinity();
  EXPECT_FALSE(analyze(request).is_ok());  // reset at infinite speed

  request.speed = 2.0;
  request.limits.max_breakpoints = 0;
  EXPECT_FALSE(analyze(request).is_ok());

  request.limits = {};
  request.limits.rel_tol = -1.0;
  EXPECT_FALSE(analyze(request).is_ok());

  request.limits = {};
  request.lo_speed = 0.0;
  request.parts = {.speedup = false, .reset = false, .lo = true};
  EXPECT_FALSE(analyze(request).is_ok());  // LO test at speed 0
}

TEST(AnalysisFacadeTest, InfiniteSpeedIsFineWithoutReset) {
  // The verdict-only question "is HI mode schedulable at unbounded speedup"
  // stays answerable (resilience/partition callers rely on it).
  const AnalysisReport r =
      Analyzer()
          .analyze(table1_base(), std::numeric_limits<double>::infinity(),
                   {.speedup = true, .reset = false, .lo = false})
          .value();
  EXPECT_TRUE(r.hi_schedulable);
}

}  // namespace
}  // namespace rbs

// Edge cases of the analysis options, result metadata, and small utilities
// not covered elsewhere.
#include <gtest/gtest.h>

#include <cmath>

#include "core/reset.hpp"
#include "core/speedup.hpp"
#include "gen/paper_examples.hpp"

namespace rbs {
namespace {

TEST(SpeedupOptionsTest, BreakpointCapReportsHonestError) {
  // Force the cap below convergence: the result must be marked inexact with
  // a non-negative error bound that still brackets the true value.
  SpeedupOptions options;
  options.max_breakpoints = 2;
  const SpeedupResult capped = min_speedup(table1_base(), options);
  const SpeedupResult full = min_speedup(table1_base());
  EXPECT_FALSE(capped.exact);
  EXPECT_GE(capped.error_bound, 0.0);
  EXPECT_LE(full.s_min, capped.s_min + capped.error_bound + 1e-12);
  EXPECT_GE(full.s_min + 1e-12, capped.s_min);  // reported value is a lower witness
}

TEST(SpeedupOptionsTest, BreakpointCountReported) {
  const SpeedupResult r = min_speedup(table1_base());
  EXPECT_GT(r.breakpoints_visited, 0u);
  EXPECT_LT(r.breakpoints_visited, 1000u);  // hyperperiod 105: a few hundred max
}

TEST(ResetOptionsTest, BreakpointCapGivesConservativeInfinity) {
  ResetOptions options;
  options.max_breakpoints = 1;
  const ResetResult r = resetting_time(table1_base(), 2.0, options);
  EXPECT_FALSE(r.exact);
  EXPECT_TRUE(std::isinf(r.delta_r));
}

TEST(ResetOptionsTest, BreakpointCountReported) {
  const ResetResult r = resetting_time(table1_base(), 2.0);
  EXPECT_GT(r.breakpoints_visited, 0u);
}

TEST(InfTicksTest, SentinelArithmeticSafe) {
  // The sentinel must survive the additions the analyses perform.
  EXPECT_TRUE(is_inf(kInfTicks));
  EXPECT_TRUE(is_inf(kInfTicks + kInfTicks / 2));  // no overflow into negatives
  EXPECT_FALSE(is_inf(kInfTicks - 1));
  EXPECT_GT(kInfTicks, Ticks{1} << 40);  // far above any realistic horizon
}

TEST(ModeNamesTest, StableStrings) {
  EXPECT_EQ(to_string(Mode::LO), "LO");
  EXPECT_EQ(to_string(Mode::HI), "HI");
  EXPECT_EQ(to_string(Criticality::LO), "LO");
  EXPECT_EQ(to_string(Criticality::HI), "HI");
}

TEST(Table1GoldenTest, AllProseFactsAtOnce) {
  // The single place asserting every reconstructed Table I fact together,
  // as a regression anchor for the whole analysis stack.
  const TaskSet base = table1_base();
  const TaskSet degraded = table1_degraded();
  EXPECT_NEAR(min_speedup_value(base), 4.0 / 3.0, 1e-12);
  EXPECT_NEAR(min_speedup_value(degraded), 12.0 / 13.0, 1e-12);
  EXPECT_NEAR(resetting_time_value(base, 2.0), 6.0, 1e-9);
  EXPECT_NEAR(resetting_time_value(base, 4.0 / 3.0), 9.0, 1e-9);
  const ImplicitSet skel = table1_implicit();
  EXPECT_EQ(skel.size(), 2u);
  EXPECT_NEAR(skel.u_hi_hi(), 5.0 / 7.0, 1e-12);
  EXPECT_NEAR(skel.u_lo_lo(), 2.0 / 15.0, 1e-12);
}

}  // namespace
}  // namespace rbs

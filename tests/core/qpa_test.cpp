// Tests for the QPA LO-mode test: identical verdicts to the forward
// processor-demand sweep, across hand-built and randomized workloads.
#include "core/qpa.hpp"

#include <gtest/gtest.h>

#include "core/dbf.hpp"
#include "core/edf.hpp"
#include "gen/paper_examples.hpp"
#include "gen/rng.hpp"
#include "gen/taskgen.hpp"

namespace rbs {
namespace {

TEST(QpaTest, EmptySetSchedulable) { EXPECT_TRUE(qpa_lo_schedulable(TaskSet{})); }

TEST(QpaTest, SimpleSchedulableAndNot) {
  EXPECT_TRUE(qpa_lo_schedulable(TaskSet({McTask::lo("l", 10, 10, 10)})));
  const TaskSet over({McTask::lo("a", 6, 10, 10), McTask::lo("b", 6, 10, 10)});
  EXPECT_FALSE(qpa_lo_schedulable(over));
}

TEST(QpaTest, ConstrainedDeadlineViolation) {
  const TaskSet set({McTask::lo("a", 2, 2, 100), McTask::lo("b", 2, 2, 100)});
  const EdfTestResult r = qpa_lo_test(set);
  EXPECT_FALSE(r.schedulable);
  // QPA's witness is *a* violating interval; demand must exceed it there.
  EXPECT_GT(dbf_lo_total(set, r.violation_delta),
            static_cast<Ticks>(r.violation_delta));
}

TEST(QpaTest, SpeedParameterScalesSupply) {
  const TaskSet set({McTask::lo("a", 2, 2, 100), McTask::lo("b", 2, 2, 100)});
  EXPECT_FALSE(qpa_lo_schedulable(set, 1.0));
  EXPECT_TRUE(qpa_lo_schedulable(set, 2.0));
}

TEST(QpaTest, FullUtilizationImplicit) {
  const TaskSet set({McTask::lo("a", 5, 10, 10), McTask::lo("b", 10, 20, 20)});
  EXPECT_TRUE(qpa_lo_schedulable(set));
}

TEST(QpaTest, Table1Sets) {
  EXPECT_TRUE(qpa_lo_schedulable(table1_base()));
  EXPECT_TRUE(qpa_lo_schedulable(table1_degraded()));
}

TEST(QpaTest, AgreesWithForwardSweepExhaustively) {
  // Small-parameter family: both algorithms must give identical verdicts.
  for (Ticks d1 = 2; d1 <= 6; ++d1)
    for (Ticks c1 = 1; c1 <= d1; ++c1)
      for (Ticks c2 = 1; c2 <= 4; ++c2)
        for (Ticks d2 = c2; d2 <= 9; d2 += 2) {
          const TaskSet set({McTask::lo("a", c1, d1, 7), McTask::lo("b", c2, d2, 9)});
          EXPECT_EQ(qpa_lo_schedulable(set), lo_mode_schedulable(set))
              << describe(set[0]) << " | " << describe(set[1]);
        }
}

class QpaRandomTest : public testing::TestWithParam<int> {};

TEST_P(QpaRandomTest, AgreesWithForwardSweepOnRandomSets) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  GenParams params;
  params.period_min = 10;
  params.period_max = 1000;
  for (double u : {0.4, 0.6, 0.8, 0.95}) {
    params.u_bound = u;
    for (int i = 0; i < 25; ++i) {
      const auto skeleton = generate_task_set(params, rng);
      if (!skeleton) continue;
      // Random x stresses constrained deadlines (the interesting case).
      const double x = rng.uniform(0.05, 1.0);
      const TaskSet set = skeleton->materialize(x, 2.0);
      for (double speed : {0.8, 1.0, 1.3}) {
        EXPECT_EQ(qpa_lo_schedulable(set, speed), lo_mode_schedulable(set, speed))
            << "u=" << u << " x=" << x << " speed=" << speed << " trial=" << i;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, QpaRandomTest, testing::Values(1, 2, 3, 4, 5));

TEST(QpaTest, ConvergesInFewIterations) {
  Rng rng(77);
  GenParams params;
  params.u_bound = 0.9;
  const auto skeleton = generate_task_set(params, rng);
  ASSERT_TRUE(skeleton.has_value());
  const TaskSet set = skeleton->materialize(0.5, 2.0);
  const EdfTestResult fwd = lo_mode_test(set);
  const EdfTestResult qpa = qpa_lo_test(set);
  EXPECT_EQ(fwd.schedulable, qpa.schedulable);
  // The whole point of QPA: far fewer evaluation points.
  EXPECT_LT(qpa.breakpoints_visited, 200u);
}

// --- boundary-schedulability regressions (tolerance policy, PR 2) ---------
// Mirrors EdfBoundaryTest: QPA must agree with the forward sweep on the
// exact U = speed / zero-slack breakpoints routed through the tolerance
// policy, not just in the interior.

TEST(QpaBoundaryTest, ExactFullUtilizationStaysSchedulable) {
  const TaskSet set({McTask::lo("a", 1, 2, 2), McTask::lo("b", 1, 2, 2)});
  const EdfTestResult r = qpa_lo_test(set);
  EXPECT_TRUE(r.schedulable);
  EXPECT_TRUE(r.conclusive);
}

TEST(QpaBoundaryTest, InexactFullUtilizationStaysSchedulable) {
  // Ten adds of 0.1 leave U an ulp short of 1; see EdfBoundaryTest.
  std::vector<McTask> tasks;
  for (int i = 0; i < 10; ++i)
    tasks.push_back(McTask::lo("t" + std::to_string(i), 1, 10, 10));
  const TaskSet set(tasks);
  const EdfTestResult r = qpa_lo_test(set);
  EXPECT_TRUE(r.schedulable);
  EXPECT_TRUE(r.conclusive);
}

TEST(QpaBoundaryTest, ZeroSlackWitnessAgreesWithForwardSweep) {
  // Demand touches supply exactly at delta = 2 (slack 0 at a breakpoint).
  const TaskSet set({McTask::lo("a", 2, 2, 4), McTask::lo("b", 1, 4, 4)});
  EXPECT_TRUE(qpa_lo_schedulable(set));
  EXPECT_EQ(qpa_lo_schedulable(set), lo_mode_schedulable(set));
}

TEST(QpaBoundaryTest, DefinitelyOverloadedStillRejected) {
  const TaskSet set({McTask::lo("a", 6, 10, 10), McTask::lo("b", 6, 10, 10)});
  EXPECT_FALSE(qpa_lo_schedulable(set));
}

}  // namespace
}  // namespace rbs

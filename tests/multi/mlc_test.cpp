// Tests for the K-level extension (per-transition dual-criticality
// projections).
#include "multi/mlc.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "core/edf.hpp"
#include "core/reset.hpp"
#include "core/speedup.hpp"
#include "gen/paper_examples.hpp"
#include "sim/simulator.hpp"

namespace rbs {
namespace {

// A 3-level system: one level-2 task (certified twice), one level-1 task,
// and one level-0 task that degrades at the first switch and is terminated
// at the second.
MlcSystem three_level_system() {
  std::vector<MlcTask> tasks;
  tasks.push_back({"crit2", 2, {{20, 6, 2}, {20, 12, 4}, {20, 20, 7}}});
  tasks.push_back({"crit1", 1, {{30, 10, 3}, {30, 24, 6}, {60, 60, 6}}});
  tasks.push_back({"crit0", 0, {{25, 25, 4}, {50, 50, 4}, {kInfTicks, kInfTicks, 4}}});
  return MlcSystem(3, std::move(tasks));
}

TEST(MlcValidationTest, AcceptsWellFormedSystem) {
  EXPECT_NO_THROW(three_level_system());
}

TEST(MlcValidationTest, RejectsTooFewLevels) {
  EXPECT_THROW(MlcSystem(1, {}), std::invalid_argument);
}

TEST(MlcValidationTest, RejectsWrongLevelCount) {
  std::vector<MlcTask> tasks{{"t", 0, {{10, 10, 1}}}};
  EXPECT_THROW(MlcSystem(3, std::move(tasks)), std::invalid_argument);
}

TEST(MlcValidationTest, RejectsShrinkingWcetBelowCriticality) {
  std::vector<MlcTask> tasks{{"t", 1, {{10, 5, 3}, {10, 8, 2}}}};
  EXPECT_THROW(MlcSystem(2, std::move(tasks)), std::invalid_argument);
}

TEST(MlcValidationTest, RejectsTerminationAtOwnCriticality) {
  std::vector<MlcTask> tasks{{"t", 1, {{10, 5, 3}, {kInfTicks, kInfTicks, 3}}}};
  EXPECT_THROW(MlcSystem(2, std::move(tasks)), std::invalid_argument);
}

TEST(MlcValidationTest, RejectsResurrection) {
  std::vector<MlcTask> tasks{
      {"t", 0, {{10, 10, 2}, {kInfTicks, kInfTicks, 2}, {20, 20, 2}}}};
  EXPECT_THROW(MlcSystem(3, std::move(tasks)), std::invalid_argument);
}

TEST(MlcValidationTest, RejectsWcetChangeAboveCriticality) {
  std::vector<MlcTask> tasks{{"t", 0, {{10, 10, 2}, {20, 20, 3}}}};
  EXPECT_THROW(MlcSystem(2, std::move(tasks)), std::invalid_argument);
}

TEST(MlcProjectionTest, TwoLevelSystemReproducesDualAnalysis) {
  // A K = 2 system built from Table I must match the dual-criticality path
  // exactly (same s_min, same Delta_R).
  std::vector<MlcTask> tasks;
  tasks.push_back({"tau1", 1, {{7, 4, 3}, {7, 7, 5}}});
  tasks.push_back({"tau2", 0, {{15, 5, 2}, {20, 15, 2}}});
  const MlcSystem system(2, std::move(tasks));
  const TaskSet proj = system.projection(1);
  EXPECT_NEAR(min_speedup_value(proj), min_speedup_value(table1_degraded()), 1e-12);
  EXPECT_NEAR(resetting_time_value(proj, 2.0), resetting_time_value(table1_degraded(), 2.0),
              1e-9);
}

TEST(MlcProjectionTest, StructureOfEachTransition) {
  const MlcSystem system = three_level_system();

  const TaskSet p1 = system.projection(1);
  ASSERT_EQ(p1.size(), 3u);
  EXPECT_TRUE(p1[0].is_hi());   // crit2: full service across 0 -> 1
  EXPECT_TRUE(p1[1].is_hi());   // crit1 still above the transition
  EXPECT_FALSE(p1[2].is_hi());  // crit0 degrades 25 -> 50
  EXPECT_EQ(p1[2].period(Mode::HI), 50);

  const TaskSet p2 = system.projection(2);
  ASSERT_EQ(p2.size(), 3u);
  EXPECT_TRUE(p2[0].is_hi());
  EXPECT_EQ(p2[0].wcet(Mode::LO), 4);  // level-1 WCET is the new optimistic budget
  EXPECT_EQ(p2[0].wcet(Mode::HI), 7);
  EXPECT_FALSE(p2[1].is_hi());  // crit1 degrades above its level: 30 -> 60
  EXPECT_EQ(p2[1].period(Mode::HI), 60);
  EXPECT_TRUE(p2[2].dropped_in_hi());  // crit0 terminated at level 2
}

TEST(MlcProjectionTest, TransitionIndexBoundsChecked) {
  const MlcSystem system = three_level_system();
  EXPECT_THROW(system.projection(0), std::invalid_argument);
  EXPECT_THROW(system.projection(3), std::invalid_argument);
}

TEST(MlcAnalysisTest, EndToEndThreeLevels) {
  const MlcSystem system = three_level_system();
  const std::vector<double> s_mins = mlc_min_speedups(system);
  ASSERT_EQ(s_mins.size(), 2u);
  for (double s : s_mins) EXPECT_TRUE(std::isfinite(s));

  std::vector<double> budget{std::max(1.0, s_mins[0]) + 0.2,
                             std::max(1.0, s_mins[1]) + 0.2};
  const MlcAnalysis analysis = analyze_mlc(system, budget);
  EXPECT_TRUE(analysis.mode0_schedulable);
  EXPECT_TRUE(analysis.schedulable);
  ASSERT_EQ(analysis.reset_times.size(), 2u);
  for (double dr : analysis.reset_times) EXPECT_TRUE(std::isfinite(dr));

  // Tight budgets below some s_min flip the verdict.
  std::vector<double> tight{s_mins[0] * 0.5, budget[1]};
  EXPECT_FALSE(analyze_mlc(system, tight).schedulable);
}

TEST(MlcAnalysisTest, BudgetSizeChecked) {
  EXPECT_THROW(analyze_mlc(three_level_system(), {2.0}), std::invalid_argument);
}

TEST(MlcSimTest, EveryProjectionExecutesCleanly) {
  // Each transition is a dual-criticality instance: the existing simulator
  // validates each one at its per-level s_min.
  const MlcSystem system = three_level_system();
  for (int k = 1; k < system.num_levels(); ++k) {
    const TaskSet proj = system.projection(k);
    const double s = std::max({min_speedup_value(proj) + 1e-9,
                               proj.total_utilization(Mode::HI) + 0.05, 0.2});
    const double dr = resetting_time_value(proj, s);
    sim::SimConfig cfg;
    cfg.horizon = 20000.0;
    cfg.hi_speed = s;
    cfg.demand.overrun_probability = 0.6;
    cfg.release_jitter = 0.2;
    cfg.seed = static_cast<std::uint64_t>(k);
    const sim::SimResult r = sim::simulate(proj, cfg);
    EXPECT_FALSE(r.deadline_missed()) << "transition " << k;
    if (std::isfinite(dr))
      for (double dwell : r.hi_dwell_times) EXPECT_LE(dwell, dr + 1e-6) << "transition " << k;
  }
}

}  // namespace
}  // namespace rbs

// MulticoreSim (sim/multicore.hpp): composition contract.
//
// The load-bearing assertion: with a single core and no faults, MulticoreSim
// is BIT-IDENTICAL (EXPECT_EQ on every SimMetrics field, trace included) to
// the uniprocessor event kernel on the differential suite's own scenarios --
// the composition layer adds nothing and loses nothing. On top of that:
// metric merging across cores, per-core fault plans, and request validation.
#include <gtest/gtest.h>

#include <numeric>
#include <string>
#include <vector>

#include "sim/multicore.hpp"
#include "sim/sim_corpus.hpp"
#include "sim/simulate.hpp"

namespace rbs::sim {
namespace {

using testkit::config_corpus;
using testkit::expect_identical;
using testkit::make_set;

std::vector<std::vector<std::size_t>> everything_on_one_core(std::size_t n) {
  std::vector<std::size_t> all(n);
  std::iota(all.begin(), all.end(), 0);
  return {all};
}

TEST(MulticoreSimTest, SingleCoreBitIdenticalToUniprocessorKernelAcrossCorpus) {
  MulticoreSim multicore;
  Simulator uniprocessor;
  for (std::uint64_t set_seed : {17u, 23u, 41u}) {
    const TaskSet set = make_set(set_seed, 0.6);
    for (const auto& [name, proto] : config_corpus()) {
      SimConfig cfg = proto;
      cfg.seed = set_seed * 100 + 1;
      MulticoreRequest request;
      request.set = set;
      request.assignment = everything_on_one_core(set.size());
      request.config = cfg;
      const auto multi_report = multicore.run(request);
      const auto uni_report = uniprocessor.run(set, cfg);
      ASSERT_TRUE(multi_report.is_ok()) << name << ": " << multi_report.error_message();
      ASSERT_TRUE(uni_report.is_ok()) << name;
      ASSERT_EQ(multi_report->cores.size(), 1u);
      // Core 0 runs with the seed unchanged, so the full report -- metrics,
      // trace, termination -- must be indistinguishable from the
      // uniprocessor kernel's.
      EXPECT_EQ(multi_report->cores[0].termination, uni_report->termination) << name;
      expect_identical(multi_report->cores[0].metrics, uni_report->metrics,
                       name + " set=" + std::to_string(set_seed));
      // With one core, local and global indexing coincide: the combined view
      // agrees with the per-core metrics on everything but the trace.
      expect_identical(multi_report->combined,
                       [&] {
                         SimMetrics no_trace = uni_report->metrics;
                         no_trace.trace = Trace{};
                         return no_trace;
                       }(),
                       name + " combined");
    }
  }
}

TEST(MulticoreSimTest, CombinedMetricsMergeAcrossCores) {
  const TaskSet set({McTask::hi("h0", 2, 6, 8, 20, 20), McTask::lo("l0", 3, 15, 15),
                     McTask::hi("h1", 2, 6, 8, 20, 20), McTask::lo("l1", 3, 15, 15)});
  MulticoreRequest request;
  request.set = set;
  request.assignment = {{0, 1}, {2, 3}};
  request.config.horizon = 1000.0;
  request.config.hi_speed = 2.0;
  request.config.demand.overrun_probability = 0.2;
  MulticoreSim sim;
  const auto report = sim.run(request);
  ASSERT_TRUE(report.is_ok());
  ASSERT_EQ(report->cores.size(), 2u);
  EXPECT_TRUE(report->completed);

  const SimMetrics& a = report->cores[0].metrics;
  const SimMetrics& b = report->cores[1].metrics;
  EXPECT_EQ(report->combined.jobs_released, a.jobs_released + b.jobs_released);
  EXPECT_EQ(report->combined.jobs_completed, a.jobs_completed + b.jobs_completed);
  EXPECT_EQ(report->combined.busy_time, a.busy_time + b.busy_time);
  ASSERT_EQ(report->combined.task_stats.size(), 4u);
  // Global remapping: core 1's local task 0 is global task 2.
  EXPECT_EQ(report->combined.task_stats[2].released, b.task_stats[0].released);
  EXPECT_EQ(report->combined.task_stats[1].released, a.task_stats[1].released);
  // Identical task lists on both cores release identical job counts (no
  // jitter), even though the per-core RNG streams differ.
  EXPECT_EQ(a.jobs_released, b.jobs_released);
}

TEST(MulticoreSimTest, CoreFaultEndsOnlyThatCore) {
  const TaskSet set({McTask::hi("h0", 2, 6, 8, 20, 20), McTask::hi("h1", 2, 6, 8, 20, 20)});
  MulticoreRequest request;
  request.set = set;
  request.assignment = {{0}, {1}};
  request.config.horizon = 500.0;
  request.core_faults.resize(2);
  request.core_faults[0].core_fail_at = 100.0;
  MulticoreSim sim;
  const auto report = sim.run(request);
  ASSERT_TRUE(report.is_ok());
  EXPECT_TRUE(report->completed);  // a core fault is a completed run
  EXPECT_EQ(report->cores[0].termination, SimTermination::kCoreFault);
  EXPECT_EQ(report->cores[1].termination, SimTermination::kHorizon);
  // The dying core's metrics are the honest prefix up to the fault.
  EXPECT_LE(report->cores[0].metrics.horizon, 100.0 + 1e-9);
  EXPECT_EQ(report->cores[1].metrics.horizon, 500.0);
  // No plan and no survivor shortage: the displaced HI task was force-placed.
  EXPECT_FALSE(report->used_plan);
  EXPECT_EQ(report->forced_migrations, 1u);
}

TEST(MulticoreSimTest, RejectsMalformedRequests) {
  const TaskSet set({McTask::hi("h", 2, 6, 8, 20, 20), McTask::lo("l", 3, 15, 15)});
  MulticoreRequest request;
  request.set = set;
  request.assignment = {{0}, {0, 1}};  // task 0 on two cores
  MulticoreSim sim;
  EXPECT_FALSE(sim.run(request).is_ok());

  request.assignment = {{0}};  // task 1 nowhere
  EXPECT_FALSE(sim.run(request).is_ok());

  request.assignment = {{0, 1}};
  request.core_faults.resize(3);  // wrong per-core plan count
  EXPECT_FALSE(sim.run(request).is_ok());
}

}  // namespace
}  // namespace rbs::sim

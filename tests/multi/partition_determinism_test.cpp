// Determinism of the FFD partitioner (core/partition.hpp): the documented
// tie-break -- (criticality, C(LO), C(HI), D(LO), D(HI), T(LO), T(HI))
// ascending among equal-utilization tasks -- makes the produced partition
// invariant under renaming and under permutation of equal-utilization ties,
// the property the offline resilience verdict and the online migrator both
// lean on (the same file must partition the same way on every host).
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <tuple>
#include <vector>

#include "core/partition.hpp"

namespace rbs {
namespace {

using ParamKey = std::tuple<int, Ticks, Ticks, Ticks, Ticks, Ticks, Ticks>;

ParamKey key_of(const McTask& t) {
  return {t.is_hi() ? 1 : 0,
          t.wcet(Mode::LO),    t.wcet(Mode::HI),
          t.deadline(Mode::LO), t.deadline(Mode::HI),
          t.period(Mode::LO),  t.period(Mode::HI)};
}

// The partition's shape as sorted parameter-key lists per core: the
// name-free, index-free view two equivalent inputs must agree on.
std::vector<std::vector<ParamKey>> shape(const TaskSet& set, const PartitionResult& r) {
  std::vector<std::vector<ParamKey>> out(r.assignment.size());
  for (std::size_t c = 0; c < r.assignment.size(); ++c) {
    for (std::size_t idx : r.assignment[c]) out[c].push_back(key_of(set[idx]));
    std::sort(out[c].begin(), out[c].end());
  }
  return out;
}

// A workload with deliberate equal-utilization ties: a2/a1 share every
// parameter (identical twins), b ties their total utilization with different
// parameters, plus distinct heavier tasks to occupy the first bins.
std::vector<McTask> tied_tasks(const std::string& prefix) {
  return {
      McTask::hi(prefix + "heavy", 4, 12, 10, 24, 24),   // U = 1/6 + 1/2
      McTask::lo(prefix + "mid", 6, 18, 18),             // U = 1/3 (LO only)
      McTask::hi(prefix + "a1", 2, 6, 8, 20, 20),        // U = 0.1 + 0.3
      McTask::hi(prefix + "a2", 2, 6, 8, 20, 20),        // identical twin
      McTask::hi(prefix + "b", 4, 4, 10, 20, 20),        // U = 0.2 + 0.2: total ties a1
      McTask::lo(prefix + "light", 1, 25, 25),           // U = 0.04
  };
}

TEST(PartitionDeterminismTest, InvariantUnderRenaming) {
  const TaskSet original(tied_tasks("x_"));
  const TaskSet renamed(tied_tasks("totally_different_"));
  const PartitionResult a = partition_first_fit(original, 3);
  const PartitionResult b = partition_first_fit(renamed, 3);
  ASSERT_TRUE(a.feasible);
  ASSERT_TRUE(b.feasible);
  // Names never enter the order, so even the raw index assignment matches.
  EXPECT_EQ(a.assignment, b.assignment);
}

TEST(PartitionDeterminismTest, InvariantUnderPermutationOfTies) {
  const std::vector<McTask> tasks = tied_tasks("p_");
  const TaskSet forward(tasks);
  std::vector<McTask> reversed_tasks(tasks.rbegin(), tasks.rend());
  const TaskSet reversed(reversed_tasks);
  std::vector<McTask> rotated_tasks(tasks.begin() + 2, tasks.end());
  rotated_tasks.insert(rotated_tasks.end(), tasks.begin(), tasks.begin() + 2);
  const TaskSet rotated(rotated_tasks);

  const PartitionResult a = partition_first_fit(forward, 3);
  const PartitionResult b = partition_first_fit(reversed, 3);
  const PartitionResult c = partition_first_fit(rotated, 3);
  ASSERT_TRUE(a.feasible);
  ASSERT_TRUE(b.feasible);
  ASSERT_TRUE(c.feasible);
  // Indices shift with the permutation; the parameter-level shape must not.
  EXPECT_EQ(shape(forward, a), shape(reversed, b));
  EXPECT_EQ(shape(forward, a), shape(rotated, c));
}

TEST(PartitionDeterminismTest, EmptySetFeasibleOnEveryCoreCount) {
  for (std::size_t cores : {std::size_t{1}, std::size_t{3}}) {
    const PartitionResult r = partition_first_fit(TaskSet{}, cores);
    EXPECT_TRUE(r.feasible);
    ASSERT_EQ(r.assignment.size(), cores);
    ASSERT_EQ(r.core_s_min.size(), cores);
    ASSERT_EQ(r.core_delta_r.size(), cores);
    for (std::size_t c = 0; c < cores; ++c) {
      EXPECT_TRUE(r.assignment[c].empty());
      EXPECT_EQ(r.core_s_min[c], 0.0);
      EXPECT_EQ(r.core_delta_r[c], 0.0);
    }
  }
}

TEST(PartitionDeterminismTest, InfeasibleTaskNamedNoMatterTheCoreCount) {
  // s_min of this task is ~0.9 alone, far above a 0.5x budget: it fits no
  // core, and FFD must say which task failed rather than just "no".
  const TaskSet set({McTask::hi("too_big", 5, 18, 10, 20, 20)});
  PartitionOptions options;
  options.hi_speedup = 0.5;
  for (std::size_t cores : {std::size_t{1}, std::size_t{4}}) {
    const PartitionResult r = partition_first_fit(set, cores, options);
    EXPECT_FALSE(r.feasible);
    ASSERT_TRUE(r.rejected_task.has_value());
    EXPECT_EQ(*r.rejected_task, 0u);
  }
}

TEST(PartitionDeterminismTest, RepeatedRunsBitIdentical) {
  const TaskSet set(tied_tasks("r_"));
  const PartitionResult a = partition_first_fit(set, 3);
  const PartitionResult b = partition_first_fit(set, 3);
  EXPECT_EQ(a.assignment, b.assignment);
  EXPECT_EQ(a.core_s_min, b.core_s_min);
  EXPECT_EQ(a.core_delta_r, b.core_delta_r);
}

}  // namespace
}  // namespace rbs

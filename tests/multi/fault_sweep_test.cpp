// Fault sweep: the offline tolerance verdict against the online migrator.
//
// The invariant the whole multicore stack hangs on: in a k = 1-tolerant
// partition, NO HI deadline is missed for ANY single-core failure at seeded
// random instants -- the precomputed spare assignment, applied mid-run by
// MulticoreSim, really does absorb the displaced work. And the verdict is
// not vacuous: a partition the analysis rejects demonstrably misses HI
// deadlines under the same sweep.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "gen/rng.hpp"
#include "multi/resilience.hpp"
#include "sim/multicore.hpp"

namespace rbs::sim {
namespace {

std::uint64_t hi_misses(const TaskSet& set, const SimMetrics& metrics) {
  std::uint64_t count = 0;
  for (const DeadlineMiss& miss : metrics.misses) count += set[miss.task_index].is_hi();
  return count;
}

// The tolerant fixture: two lightly loaded cores, each holding one HI and
// one LO task, under the default 2x budgets. analyze_resilience certifies
// k = 1 for it (asserted below, not assumed).
multi::MultiRequest tolerant_request() {
  multi::MultiRequest request;
  request.set = TaskSet({McTask::hi("h0", 2, 6, 8, 20, 20), McTask::hi("h1", 2, 6, 8, 20, 20),
                         McTask::lo("l0", 2, 30, 30), McTask::lo("l1", 2, 30, 30)});
  request.assignment = {{0, 2}, {1, 3}};
  request.budgets.assign(2, CoreBudget{});
  return request;
}

TEST(FaultSweepTest, TolerantPartitionMissesNoHiDeadlineForAnySingleCoreFailure) {
  const multi::MultiRequest offline = tolerant_request();
  const auto plan = multi::analyze_resilience(offline);
  ASSERT_TRUE(plan.is_ok());
  ASSERT_TRUE(plan->tolerant) << "fixture must be k=1-tolerant for the sweep to mean anything";

  SimConfig base;
  base.horizon = 400.0;
  base.hi_speed = 2.0;
  base.demand.overrun_probability = 0.3;

  Rng sweep_rng(977);
  MulticoreSim sim;
  std::size_t runs = 0;
  for (std::size_t failing_core = 0; failing_core < 2; ++failing_core) {
    for (int instant = 0; instant < 4; ++instant) {
      const double fail_at = sweep_rng.uniform(20.0, 350.0);
      MulticoreRequest request;
      request.set = offline.set;
      request.assignment = offline.assignment;
      request.config = base;
      request.config.seed = 100 + runs;
      request.core_faults.resize(2);
      request.core_faults[failing_core].core_fail_at = fail_at;
      request.plan = &*plan;
      const auto report = sim.run(request);
      ASSERT_TRUE(report.is_ok());
      EXPECT_TRUE(report->completed);
      EXPECT_TRUE(report->used_plan) << "scenario lookup failed for core " << failing_core;
      EXPECT_EQ(report->migrations_applied, 1u);
      EXPECT_EQ(report->forced_migrations, 0u);
      EXPECT_EQ(hi_misses(request.set, report->combined), 0u)
          << "core " << failing_core << " failing at " << fail_at;
      ++runs;
    }
  }
  EXPECT_EQ(runs, 8u);
}

TEST(FaultSweepTest, BoostDenialCoveredByThePlan) {
  const multi::MultiRequest offline = tolerant_request();
  const auto plan = multi::analyze_resilience(offline);
  ASSERT_TRUE(plan.is_ok());
  ASSERT_TRUE(plan->tolerant);

  MulticoreRequest request;
  request.set = offline.set;
  request.assignment = offline.assignment;
  request.config.horizon = 400.0;
  request.config.hi_speed = 2.0;
  request.config.demand.overrun_probability = 0.3;
  request.config.seed = 7;
  request.core_faults.resize(2);
  request.core_faults[0].boost_denied_on_core = true;
  request.plan = &*plan;
  MulticoreSim sim;
  const auto report = sim.run(request);
  ASSERT_TRUE(report.is_ok());
  EXPECT_TRUE(report->used_plan);
  EXPECT_EQ(hi_misses(request.set, report->combined), 0u);
}

TEST(FaultSweepTest, NonTolerantPartitionDemonstrablyMisses) {
  // Each core alone fits its 1.5x budget; the merged pair needs ~1.8x. The
  // analysis rejects k = 1, and the sweep confirms the rejection is earned:
  // the forced best-effort migration overloads the survivor into real HI
  // misses at some failure instant.
  multi::MultiRequest offline;
  offline.set = TaskSet({McTask::hi("a", 5, 18, 10, 20, 20), McTask::hi("b", 5, 18, 10, 20, 20)});
  offline.assignment = {{0}, {1}};
  CoreBudget budget;
  budget.hi_speedup = 1.5;
  offline.budgets.assign(2, budget);
  offline.consider_boost_denial = false;
  const auto plan = multi::analyze_resilience(offline);
  ASSERT_TRUE(plan.is_ok());
  EXPECT_TRUE(plan->nominal_feasible);
  ASSERT_FALSE(plan->tolerant);

  SimConfig base;
  base.horizon = 2000.0;
  base.hi_speed = 1.5;
  base.demand.overrun_probability = 0.9;  // keep the survivor in HI mode

  Rng sweep_rng(31);
  MulticoreSim sim;
  std::uint64_t total_hi_misses = 0;
  for (int instant = 0; instant < 4; ++instant) {
    const double fail_at = sweep_rng.uniform(50.0, 500.0);
    MulticoreRequest request;
    request.set = offline.set;
    request.assignment = offline.assignment;
    request.config = base;
    request.config.seed = 40 + static_cast<std::uint64_t>(instant);
    request.core_faults.resize(2);
    request.core_faults[0].core_fail_at = fail_at;
    request.plan = &*plan;
    const auto report = sim.run(request);
    ASSERT_TRUE(report.is_ok());
    // The infeasible scenario has no migration steps, so the displaced task
    // arrives via the forced best-effort path.
    EXPECT_EQ(report->forced_migrations, 1u);
    total_hi_misses += hi_misses(request.set, report->combined);
  }
  EXPECT_GT(total_hi_misses, 0u) << "non-tolerant partition never missed: verdict vacuous?";
}

}  // namespace
}  // namespace rbs::sim

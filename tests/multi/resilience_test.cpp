// Offline k-failure tolerance analysis (multi/resilience.hpp): validation,
// verdicts, spare assignments and determinism.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "multi/resilience.hpp"

namespace rbs::multi {
namespace {

// A light HI task: U(LO) = 0.1, U(HI) = 0.3.
McTask light_hi(const std::string& name) { return McTask::hi(name, 2, 6, 8, 20, 20); }

// A heavy HI task: U(LO) = 0.25, U(HI) = 0.9 -- two of them on one core need
// more than a 1.5x budget in HI mode.
McTask heavy_hi(const std::string& name) { return McTask::hi(name, 5, 18, 10, 20, 20); }

MultiRequest two_light_cores() {
  MultiRequest request;
  request.set = TaskSet({light_hi("a"), light_hi("b"), McTask::lo("l0", 2, 30, 30),
                         McTask::lo("l1", 2, 30, 30)});
  request.assignment = {{0, 2}, {1, 3}};
  request.budgets.assign(2, CoreBudget{});
  return request;
}

TEST(ResilienceTest, RejectsMalformedRequests) {
  MultiRequest request = two_light_cores();
  request.assignment.clear();
  request.budgets.clear();
  EXPECT_FALSE(analyze_resilience(request).is_ok());

  request = two_light_cores();
  request.budgets.resize(1);
  EXPECT_FALSE(analyze_resilience(request).is_ok());

  request = two_light_cores();
  request.budgets[0].hi_speedup = 0.0;
  EXPECT_FALSE(analyze_resilience(request).is_ok());

  request = two_light_cores();
  request.tolerance = 2;  // no surviving core
  EXPECT_FALSE(analyze_resilience(request).is_ok());

  request = two_light_cores();
  request.consider_fail_stop = false;
  request.consider_boost_denial = false;
  EXPECT_FALSE(analyze_resilience(request).is_ok());

  request = two_light_cores();
  request.assignment = {{0, 2}, {3}};  // task 1 unassigned
  EXPECT_FALSE(analyze_resilience(request).is_ok());

  request = two_light_cores();
  request.assignment = {{0, 2, 1}, {1, 3}};  // task 1 on two cores
  EXPECT_FALSE(analyze_resilience(request).is_ok());

  request = two_light_cores();
  request.max_scenarios = 1;  // 2 cores x 2 classes = 4 scenarios
  EXPECT_FALSE(analyze_resilience(request).is_ok());
}

TEST(ResilienceTest, ToleranceZeroChecksOnlyTheNominalPartition) {
  MultiRequest request = two_light_cores();
  request.tolerance = 0;
  const auto report = analyze_resilience(request);
  ASSERT_TRUE(report.is_ok());
  EXPECT_TRUE(report->nominal_feasible);
  EXPECT_TRUE(report->tolerant);
  EXPECT_EQ(report->scenarios_checked, 0u);
  EXPECT_TRUE(report->scenarios.empty());
  ASSERT_EQ(report->core_reports.size(), 2u);
  for (const CoreReport& core : report->core_reports) {
    EXPECT_TRUE(core.feasible);
    EXPECT_GT(core.speed_margin, 0.0);
    EXPECT_GT(core.u_hi, 0.0);
  }
}

TEST(ResilienceTest, LightPartitionToleratesAnySingleCoreFault) {
  MultiRequest request = two_light_cores();
  const auto report = analyze_resilience(request);
  ASSERT_TRUE(report.is_ok());
  EXPECT_TRUE(report->tolerant);
  // 2 cores x {fail-stop, boost-denied} = 4 scenarios.
  EXPECT_EQ(report->scenarios_checked, 4u);
  EXPECT_EQ(report->scenarios_infeasible, 0u);
  EXPECT_GT(report->analyzer_calls, 0u);

  // The fail-stop of core 0 migrates its HI task to core 1 and loses its LO
  // task outright.
  const FailureScenario* sc = find_scenario(*report, {0}, {CoreFaultClass::kFailStop});
  ASSERT_NE(sc, nullptr);
  EXPECT_TRUE(sc->feasible);
  ASSERT_EQ(sc->migrations.size(), 1u);
  EXPECT_EQ(sc->migrations[0].task, 0u);
  EXPECT_EQ(sc->migrations[0].from_core, 0u);
  EXPECT_EQ(sc->migrations[0].to_core, 1u);
  ASSERT_EQ(sc->lost_lo.size(), 1u);
  EXPECT_EQ(sc->lost_lo[0], 2u);
  // The receiving core's post-migration requirement is real and within
  // budget.
  ASSERT_EQ(sc->post_s_min.size(), 2u);
  EXPECT_GT(sc->post_s_min[1], 0.0);
  EXPECT_LE(sc->post_s_min[1], request.budgets[1].hi_speedup);

  // An unenumerated signature is not found.
  EXPECT_EQ(find_scenario(*report, {0, 1},
                          {CoreFaultClass::kFailStop, CoreFaultClass::kFailStop}),
            nullptr);
}

TEST(ResilienceTest, OverloadedMergeIsReportedNotTolerant) {
  // Each core is feasible alone under a 1.5x budget, but the merged pair
  // needs ~1.8x, so neither survivor can absorb the other's task.
  MultiRequest request;
  request.set = TaskSet({heavy_hi("a"), heavy_hi("b")});
  request.assignment = {{0}, {1}};
  CoreBudget budget;
  budget.hi_speedup = 1.5;
  request.budgets.assign(2, budget);
  request.consider_boost_denial = false;
  const auto report = analyze_resilience(request);
  ASSERT_TRUE(report.is_ok());
  EXPECT_TRUE(report->nominal_feasible);
  EXPECT_FALSE(report->tolerant);
  EXPECT_GT(report->scenarios_infeasible, 0u);
  const FailureScenario* sc = find_scenario(*report, {0}, {CoreFaultClass::kFailStop});
  ASSERT_NE(sc, nullptr);
  EXPECT_FALSE(sc->feasible);
  EXPECT_TRUE(sc->migrations.empty());  // nothing fit anywhere
}

TEST(ResilienceTest, BoostDenialOnLoOnlyCoreIsHarmless) {
  MultiRequest request;
  request.set = TaskSet({light_hi("h"), McTask::lo("l", 3, 15, 15)});
  request.assignment = {{1}, {0}};  // core 0 holds only the LO task
  request.budgets.assign(2, CoreBudget{});
  const auto report = analyze_resilience(request);
  ASSERT_TRUE(report.is_ok());
  const FailureScenario* sc = find_scenario(*report, {0}, {CoreFaultClass::kBoostDenied});
  ASSERT_NE(sc, nullptr);
  EXPECT_TRUE(sc->feasible);
  EXPECT_TRUE(sc->migrations.empty());
  EXPECT_TRUE(sc->degraded_lo.empty());
}

TEST(ResilienceTest, DeterministicAcrossRepeatedRuns) {
  const MultiRequest request = two_light_cores();
  const auto a = analyze_resilience(request);
  const auto b = analyze_resilience(request);
  ASSERT_TRUE(a.is_ok());
  ASSERT_TRUE(b.is_ok());
  ASSERT_EQ(a->scenarios.size(), b->scenarios.size());
  for (std::size_t i = 0; i < a->scenarios.size(); ++i) {
    const FailureScenario& sa = a->scenarios[i];
    const FailureScenario& sb = b->scenarios[i];
    EXPECT_EQ(sa.faulted, sb.faulted) << "scenario " << i;
    EXPECT_EQ(sa.classes, sb.classes) << "scenario " << i;
    EXPECT_EQ(sa.feasible, sb.feasible) << "scenario " << i;
    ASSERT_EQ(sa.migrations.size(), sb.migrations.size()) << "scenario " << i;
    for (std::size_t m = 0; m < sa.migrations.size(); ++m) {
      EXPECT_EQ(sa.migrations[m].task, sb.migrations[m].task);
      EXPECT_EQ(sa.migrations[m].from_core, sb.migrations[m].from_core);
      EXPECT_EQ(sa.migrations[m].to_core, sb.migrations[m].to_core);
    }
  }
}

TEST(ResilienceTest, FaultClassNamesAreStable) {
  EXPECT_EQ(to_string(CoreFaultClass::kFailStop), "fail-stop");
  EXPECT_EQ(to_string(CoreFaultClass::kBoostDenied), "boost-denied");
}

}  // namespace
}  // namespace rbs::multi

// Crash-safety integration suite for the analysis server: runs the real
// service_load binary with a cache WAL, SIGKILLs it mid-serve, restarts it
// over the surviving WAL, and verifies (a) the warm start actually served
// from the cache and (b) every response is byte-identical to an
// uninterrupted baseline run. Also exercises the graceful SIGTERM drain
// (exit 75) and the binary's own --expect-overload acceptance gate.
//
// The binary under test is injected at compile time as
// RBS_SERVICE_LOAD_PATH (see tests/CMakeLists.txt).
#include <gtest/gtest.h>

#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

namespace {

std::string load_binary() { return RBS_SERVICE_LOAD_PATH; }

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>());
}

/// fork+exec `argv`, stdout/stderr redirected to `log_path`. Returns the pid.
pid_t spawn(const std::vector<std::string>& argv, const std::string& log_path) {
  const pid_t pid = fork();
  if (pid != 0) return pid;
  const int fd = open(log_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd >= 0) {
    dup2(fd, STDOUT_FILENO);
    dup2(fd, STDERR_FILENO);
    close(fd);
  }
  std::vector<char*> raw;
  raw.reserve(argv.size() + 1);
  for (const std::string& a : argv) raw.push_back(const_cast<char*>(a.c_str()));
  raw.push_back(nullptr);
  execv(raw[0], raw.data());
  _exit(127);
}

struct ExitInfo {
  bool signalled = false;
  int code = -1;  ///< exit status, or the signal number when signalled
};

ExitInfo wait_for(pid_t pid) {
  int status = 0;
  waitpid(pid, &status, 0);
  if (WIFSIGNALED(status)) return {true, WTERMSIG(status)};
  if (WIFEXITED(status)) return {false, WEXITSTATUS(status)};
  return {false, -1};
}

ExitInfo run(const std::vector<std::string>& argv, const std::string& log_path) {
  return wait_for(spawn(argv, log_path));
}

std::size_t count_lines(const std::string& bytes) {
  std::size_t n = 0;
  for (char c : bytes)
    if (c == '\n') ++n;
  return n;
}

/// Pulls `"field": N` out of the driver's JSON report.
long long json_field(const std::string& json, const std::string& field) {
  const std::string needle = "\"" + field + "\": ";
  const std::size_t at = json.find(needle);
  if (at == std::string::npos) return -1;
  return std::atoll(json.c_str() + at + needle.size());
}

class ServiceRecoveryTest : public testing::Test {
 protected:
  std::string path(const std::string& name) const {
    return testing::TempDir() + "/" + name;
  }

  /// The fixed trace every run in a test serves: deterministic by seed.
  std::vector<std::string> trace_args(const std::string& tag,
                                      const std::vector<std::string>& extra) const {
    std::vector<std::string> argv{load_binary(), "--requests", "24",     "--seed",
                                  "17",          "--workers",  "2",      "--hi-fraction",
                                  "0.5",         "--dump",     path(tag + ".dump")};
    argv.insert(argv.end(), extra.begin(), extra.end());
    return argv;
  }
};

// The headline acceptance test: SIGKILL mid-serve, restart over the WAL; the
// restarted run must serve from the warm cache and produce responses
// byte-identical to an uninterrupted baseline.
TEST_F(ServiceRecoveryTest, SigkillThenWarmStartServesByteIdenticalResults) {
  // Uninterrupted baseline, no cache: the ground-truth response dump.
  ASSERT_EQ(run(trace_args("svc.base", {}), path("svc.base.log")).code, 0)
      << read_file(path("svc.base.log"));
  const std::string want = read_file(path("svc.base.dump"));
  ASSERT_FALSE(want.empty());

  const std::string wal = path("svc.wal.jsonl");
  std::remove(wal.c_str());

  // Victim run: slow serving (--hook-ms) so the SIGKILL lands while results
  // are still being published to the WAL.
  const pid_t pid = spawn(trace_args("svc.victim", {"--cache", wal, "--hook-ms", "30"}),
                          path("svc.victim.log"));
  bool killed = false;
  const auto t0 = std::chrono::steady_clock::now();
  while (std::chrono::steady_clock::now() - t0 < std::chrono::seconds(60)) {
    // Kill once at least two complete records made it into the WAL (line 1
    // is the header; a torn third line is torn-tail-recovered on replay).
    if (count_lines(read_file(wal)) >= 3) {
      kill(pid, SIGKILL);
      killed = true;
      break;
    }
    int status = 0;
    if (waitpid(pid, &status, WNOHANG) == pid) {
      FAIL() << "service_load finished before SIGKILL could land: "
             << read_file(path("svc.victim.log"));
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_TRUE(killed);
  const ExitInfo victim = wait_for(pid);
  ASSERT_TRUE(victim.signalled);
  ASSERT_EQ(victim.code, SIGKILL);
  // A SIGKILLed run must not have produced a (committed) dump.
  EXPECT_TRUE(read_file(path("svc.victim.dump")).empty());

  // Restart over the surviving WAL. Same seed, same trace.
  const ExitInfo warm = run(
      trace_args("svc.warm", {"--cache", wal, "--json", path("svc.warm.json")}),
      path("svc.warm.log"));
  ASSERT_FALSE(warm.signalled);
  ASSERT_EQ(warm.code, 0) << read_file(path("svc.warm.log"));

  const std::string json = read_file(path("svc.warm.json"));
  EXPECT_GT(json_field(json, "cache_hits"), 0)
      << "the restart must serve from the crash-surviving cache\n" << json;
  EXPECT_EQ(read_file(path("svc.warm.dump")), want)
      << "warm-started responses differ from the uninterrupted baseline";
}

TEST_F(ServiceRecoveryTest, SigtermDrainsAndExitsResumable) {
  const std::string wal = path("svc.term.wal.jsonl");
  std::remove(wal.c_str());

  const pid_t pid = spawn(trace_args("svc.term", {"--cache", wal, "--hook-ms", "50"}),
                          path("svc.term.log"));
  bool terminated = false;
  const auto t0 = std::chrono::steady_clock::now();
  while (std::chrono::steady_clock::now() - t0 < std::chrono::seconds(60)) {
    if (count_lines(read_file(wal)) >= 3) {
      kill(pid, SIGTERM);
      terminated = true;
      break;
    }
    int status = 0;
    if (waitpid(pid, &status, WNOHANG) == pid) {
      FAIL() << "service_load finished before SIGTERM could land: "
             << read_file(path("svc.term.log"));
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_TRUE(terminated);
  const ExitInfo e = wait_for(pid);
  ASSERT_FALSE(e.signalled) << "SIGTERM should drain gracefully";
  // 75 = campaign::kExitResumable; 0 only if the drain raced completion.
  ASSERT_TRUE(e.code == 75 || e.code == 0) << "exit " << e.code << "\n"
                                           << read_file(path("svc.term.log"));

  // The drained WAL still warm-starts a follow-up run.
  const ExitInfo resumed = run(
      trace_args("svc.term2", {"--cache", wal, "--json", path("svc.term2.json")}),
      path("svc.term2.log"));
  ASSERT_EQ(resumed.code, 0) << read_file(path("svc.term2.log"));
  EXPECT_GT(json_field(read_file(path("svc.term2.json")), "cache_hits"), 0);
}

// The binary's own --expect-overload gate, end to end: mode-switch to HI
// under a paused burst, shed only LO, recover to LO. The driver exits
// nonzero if any of that fails, so the assertion here is just the code.
TEST_F(ServiceRecoveryTest, ExpectOverloadGatePasses) {
  const ExitInfo e = run(
      {load_binary(), "--requests", "120", "--paused", "--workers", "1", "--seed", "3",
       "--hi-fraction", "0.3", "--hi-enter", "40", "--lo-exit", "4", "--expect-overload"},
      path("svc.overload.log"));
  ASSERT_FALSE(e.signalled);
  EXPECT_EQ(e.code, 0) << read_file(path("svc.overload.log"));
}

}  // namespace

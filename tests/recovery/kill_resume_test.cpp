// Crash-safety integration suite: runs the real campaign_demo binary,
// SIGKILLs it mid-campaign at a randomized (seeded, logged) journal depth,
// resumes with --resume, and byte-compares the final CSV against an
// uninterrupted baseline -- for --jobs 1 and --jobs 8. Also exercises the
// graceful SIGTERM drain (exit 75), the fault-injection paths (hang ->
// deadline kill + retry; poison -> quarantine), and a corrupted-journal
// corpus fed through the binary's --resume path.
//
// The binary under test is injected at compile time as
// RBS_CAMPAIGN_DEMO_PATH (see tests/CMakeLists.txt).
#include <gtest/gtest.h>

#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <random>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

namespace {

std::string demo_binary() { return RBS_CAMPAIGN_DEMO_PATH; }

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>());
}

void write_file(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

std::size_t count_lines(const std::string& bytes) {
  std::size_t n = 0;
  for (char c : bytes)
    if (c == '\n') ++n;
  return n;
}

/// fork+exec `argv`, stdout/stderr redirected to `log_path`. Returns the pid.
pid_t spawn(const std::vector<std::string>& argv, const std::string& log_path) {
  const pid_t pid = fork();
  if (pid != 0) return pid;
  const int fd = open(log_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd >= 0) {
    dup2(fd, STDOUT_FILENO);
    dup2(fd, STDERR_FILENO);
    close(fd);
  }
  std::vector<char*> raw;
  raw.reserve(argv.size() + 1);
  for (const std::string& a : argv) raw.push_back(const_cast<char*>(a.c_str()));
  raw.push_back(nullptr);
  execv(raw[0], raw.data());
  _exit(127);
}

struct ExitInfo {
  bool signalled = false;
  int code = -1;  ///< exit status, or the signal number when signalled
};

ExitInfo wait_for(pid_t pid) {
  int status = 0;
  waitpid(pid, &status, 0);
  if (WIFSIGNALED(status)) return {true, WTERMSIG(status)};
  if (WIFEXITED(status)) return {false, WEXITSTATUS(status)};
  return {false, -1};
}

/// Runs to completion synchronously; returns the exit info.
ExitInfo run(const std::vector<std::string>& argv, const std::string& log_path) {
  return wait_for(spawn(argv, log_path));
}

std::vector<std::string> demo_args(const std::string& extra_csv,
                                   const std::string& checkpoint,
                                   const std::vector<std::string>& extra) {
  std::vector<std::string> argv{demo_binary(), "--sets", "30", "--seed", "11"};
  if (!extra_csv.empty()) {
    argv.push_back("--csv");
    argv.push_back(extra_csv);
  }
  if (!checkpoint.empty()) {
    argv.push_back("--checkpoint");
    argv.push_back(checkpoint);
  }
  argv.insert(argv.end(), extra.begin(), extra.end());
  return argv;
}

class KillResumeTest : public testing::Test {
 protected:
  std::string path(const std::string& name) const {
    return testing::TempDir() + "/" + name;
  }

  /// Uninterrupted single-job reference CSV (computed once per test).
  std::string baseline(const std::string& tag) {
    const std::string csv = path(tag + ".baseline.csv");
    const ExitInfo e =
        run(demo_args(csv, "", {"--jobs", "1"}), path(tag + ".baseline.log"));
    EXPECT_FALSE(e.signalled);
    EXPECT_EQ(e.code, 0) << read_file(path(tag + ".baseline.log"));
    const std::string bytes = read_file(csv);
    EXPECT_FALSE(bytes.empty());
    return bytes;
  }
};

// The headline acceptance test: SIGKILL at a randomized journal depth, then
// --resume; the finished CSV must be byte-identical to the uninterrupted
// baseline, at --jobs 1 and --jobs 8.
TEST_F(KillResumeTest, SigkillThenResumeIsByteIdentical) {
  const std::string want = baseline("kill");

  // Seeded so failures replay: override with RBS_RECOVERY_SEED, and the kill
  // depth is logged either way.
  std::uint64_t seed = 20260806;
  if (const char* env = std::getenv("RBS_RECOVERY_SEED")) seed = std::strtoull(env, nullptr, 10);
  std::mt19937_64 prng(seed);

  for (const std::string jobs : {"1", "8"}) {
    const std::string tag = "kill.j" + jobs;
    const std::string csv = path(tag + ".csv");
    const std::string ck = path(tag + ".ck");
    const std::string journal = ck + ".demo.journal";
    std::remove(journal.c_str());
    std::remove(csv.c_str());  // TempDir persists across runs

    // Header line + [3, 12] record lines, then the axe falls.
    const std::size_t kill_after =
        3 + static_cast<std::size_t>(prng() % 10);
    std::cout << "[ seed " << seed << " ] jobs=" << jobs << ": SIGKILL after "
              << kill_after << " journaled record(s)\n";

    const pid_t pid = spawn(
        demo_args(csv, ck, {"--jobs", jobs, "--item-ms", "5"}), path(tag + ".log"));
    bool killed = false;
    const auto t0 = std::chrono::steady_clock::now();
    while (std::chrono::steady_clock::now() - t0 < std::chrono::seconds(60)) {
      if (count_lines(read_file(journal)) >= 1 + kill_after) {
        kill(pid, SIGKILL);
        killed = true;
        break;
      }
      int status = 0;
      if (waitpid(pid, &status, WNOHANG) == pid) {  // finished before the axe
        ASSERT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0)
            << read_file(path(tag + ".log"));
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    if (killed) {
      const ExitInfo e = wait_for(pid);
      ASSERT_TRUE(e.signalled);
      ASSERT_EQ(e.code, SIGKILL);
      // A SIGKILLed run must not have produced a CSV.
      EXPECT_TRUE(read_file(csv).empty());
    }

    const ExitInfo resumed = run(
        demo_args(csv, ck, {"--jobs", jobs, "--resume"}), path(tag + ".resume.log"));
    ASSERT_FALSE(resumed.signalled);
    ASSERT_EQ(resumed.code, 0) << read_file(path(tag + ".resume.log"));
    EXPECT_EQ(read_file(csv), want) << "resumed CSV differs at --jobs " << jobs;
  }
}

TEST_F(KillResumeTest, SigtermDrainsCheckpointsAndExitsResumable) {
  const std::string want = baseline("term");
  const std::string csv = path("term.csv");
  const std::string ck = path("term.ck");
  const std::string journal = ck + ".demo.journal";
  std::remove(journal.c_str());
  std::remove(csv.c_str());

  const pid_t pid = spawn(
      demo_args(csv, ck, {"--jobs", "2", "--item-ms", "10"}), path("term.log"));
  bool terminated = false;
  const auto t0 = std::chrono::steady_clock::now();
  while (std::chrono::steady_clock::now() - t0 < std::chrono::seconds(60)) {
    if (count_lines(read_file(journal)) >= 3) {
      kill(pid, SIGTERM);
      terminated = true;
      break;
    }
    int status = 0;
    if (waitpid(pid, &status, WNOHANG) == pid) {
      FAIL() << "campaign finished before SIGTERM could land: "
             << read_file(path("term.log"));
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_TRUE(terminated);
  const ExitInfo e = wait_for(pid);
  ASSERT_FALSE(e.signalled) << "SIGTERM should drain gracefully";
  // 75 = kExitResumable; 0 is tolerated only if the drain raced completion.
  ASSERT_TRUE(e.code == 75 || e.code == 0) << "exit " << e.code << "\n"
                                           << read_file(path("term.log"));

  const ExitInfo resumed =
      run(demo_args(csv, ck, {"--jobs", "2", "--resume"}), path("term.resume.log"));
  ASSERT_EQ(resumed.code, 0) << read_file(path("term.resume.log"));
  EXPECT_EQ(read_file(csv), want);
}

TEST_F(KillResumeTest, InjectedHangIsDeadlineKilledAndRetried) {
  const std::string want = baseline("hang");
  const std::string csv = path("hang.csv");
  const ExitInfo e = run(
      demo_args(csv, "",
                {"--jobs", "4", "--inject-hang", "7", "--item-deadline", "0.2"}),
      path("hang.log"));
  ASSERT_FALSE(e.signalled);
  ASSERT_EQ(e.code, 0) << read_file(path("hang.log"));
  const std::string log = read_file(path("hang.log"));
  EXPECT_NE(log.find("1 deadline kill"), std::string::npos) << log;
  EXPECT_NE(log.find("1 retried"), std::string::npos) << log;
  // The transient hang cost a retry but not the result: CSV is unchanged.
  EXPECT_EQ(read_file(csv), want);
}

TEST_F(KillResumeTest, PoisonItemIsQuarantinedOthersUnaffected) {
  const std::string want = baseline("poison");
  const std::string csv = path("poison.csv");
  const ExitInfo e = run(
      demo_args(csv, "", {"--jobs", "4", "--inject-fail", "4", "--retries", "2"}),
      path("poison.log"));
  ASSERT_FALSE(e.signalled);
  ASSERT_EQ(e.code, 0) << "quarantine must not fail the campaign\n"
                       << read_file(path("poison.log"));
  const std::string log = read_file(path("poison.log"));
  EXPECT_NE(log.find("1 quarantined"), std::string::npos) << log;
  EXPECT_NE(log.find("injected failure"), std::string::npos) << log;

  // Same rows as the baseline except item 4's row is the quarantine marker.
  std::istringstream got(read_file(csv)), expected(want);
  std::string got_line, want_line;
  std::size_t line_no = 0;
  while (std::getline(expected, want_line)) {
    ASSERT_TRUE(std::getline(got, got_line)) << "CSV truncated at line " << line_no;
    if (line_no == 1 + 4)  // header + items 0..3
      EXPECT_EQ(got_line, "4,quarantined");
    else
      EXPECT_EQ(got_line, want_line) << "line " << line_no;
    ++line_no;
  }
  EXPECT_FALSE(std::getline(got, got_line)) << "trailing rows in CSV";
}

// Corrupted-journal corpus, end to end through the binary's --resume path.
TEST_F(KillResumeTest, CorruptedJournalCorpus) {
  const std::string want = baseline("corpus");
  const std::string csv = path("corpus.csv");
  const std::string ck = path("corpus.ck");
  const std::string journal = ck + ".demo.journal";

  // Produce a complete healthy journal once.
  ASSERT_EQ(run(demo_args("", ck, {"--jobs", "2"}), path("corpus.log")).code, 0)
      << read_file(path("corpus.log"));
  const std::string healthy = read_file(journal);
  ASSERT_GE(count_lines(healthy), 31u);  // header + 30 records

  std::vector<std::string> lines;
  std::istringstream in(healthy);
  for (std::string line; std::getline(in, line);) lines.push_back(line + "\n");

  // 1. Truncated tail: drop half of the final line -> recovered, resumed run
  //    recomputes the lost item and the CSV matches the baseline.
  {
    std::string torn = healthy.substr(0, healthy.size() - lines.back().size() / 2);
    write_file(journal, torn);
    std::remove(csv.c_str());
    const ExitInfo e =
        run(demo_args(csv, ck, {"--resume"}), path("corpus.torn.log"));
    ASSERT_EQ(e.code, 0) << read_file(path("corpus.torn.log"));
    EXPECT_NE(read_file(path("corpus.torn.log")).find("torn-tail"), std::string::npos);
    EXPECT_EQ(read_file(csv), want);
  }

  // 2. Flipped CRC byte before the tail: rejected with a descriptive error,
  //    never silently mis-parsed.
  {
    std::string flipped = healthy;
    const std::size_t target = lines[0].size() + lines[1].size() / 2;
    flipped[target] ^= 0x01;
    write_file(journal, flipped);
    const ExitInfo e =
        run(demo_args(csv, ck, {"--resume"}), path("corpus.flip.log"));
    ASSERT_EQ(e.code, 1);
    const std::string log = read_file(path("corpus.flip.log"));
    EXPECT_NE(log.find("cannot resume"), std::string::npos) << log;
    EXPECT_NE(log.find("line 2"), std::string::npos) << log;
  }

  // 3. Duplicate record (a crash between append and bookkeeping replays one
  //    line): benign, resume completes with a baseline-identical CSV.
  {
    write_file(journal, healthy + lines[1]);
    std::remove(csv.c_str());
    const ExitInfo e =
        run(demo_args(csv, ck, {"--resume"}), path("corpus.dup.log"));
    ASSERT_EQ(e.code, 0) << read_file(path("corpus.dup.log"));
    EXPECT_EQ(read_file(csv), want);
  }
}

}  // namespace

// Unit tests for the service result cache: report serialization round trip,
// content-key canonicalization, LRU bounds, single-flight coalescing, and
// WAL warm start / compaction.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/analysis.hpp"
#include "core/task.hpp"
#include "service/cache.hpp"

namespace rbs::service {
namespace {

AnalysisReport sample_report() {
  AnalysisReport r;
  r.s_min = 1.2500000000000002;  // a value %.17g must round-trip exactly
  r.s_min_exact = false;
  r.s_min_error_bound = 1e-4;
  r.s_min_argmax = 315;
  r.delta_r = 7.0 / 3.0;
  r.delta_r_exact = true;
  r.lo_schedulable = true;
  r.hi_schedulable = true;
  r.system_schedulable = false;
  r.speed = 2.0;
  r.u_lo = 0.6999999999999993;
  r.u_hi = 0.85;
  r.speedup_breakpoints = 1234;
  r.reset_breakpoints = 56;
  r.fused_breakpoints = 78;
  r.lo_breakpoints = 90;
  return r;
}

TaskSet paper_set() {
  return TaskSet({McTask::hi("a", 1, 2, 4, 8, 8), McTask::lo("b", 2, 6, 10, 10, 10)});
}

TEST(ReportSerializationTest, RoundTripsEveryField) {
  const AnalysisReport want = sample_report();
  const std::string line = serialize_report(want);
  const Expected<AnalysisReport> got_or = parse_report(line);
  ASSERT_TRUE(got_or.is_ok()) << got_or.status().message();
  const AnalysisReport& got = got_or.value();

  EXPECT_EQ(got.s_min, want.s_min);  // bitwise: %.17g round trip
  EXPECT_EQ(got.s_min_exact, want.s_min_exact);
  EXPECT_EQ(got.s_min_error_bound, want.s_min_error_bound);
  EXPECT_EQ(got.s_min_argmax, want.s_min_argmax);
  EXPECT_EQ(got.delta_r, want.delta_r);
  EXPECT_EQ(got.delta_r_exact, want.delta_r_exact);
  EXPECT_EQ(got.lo_schedulable, want.lo_schedulable);
  EXPECT_EQ(got.hi_schedulable, want.hi_schedulable);
  EXPECT_EQ(got.system_schedulable, want.system_schedulable);
  EXPECT_EQ(got.speed, want.speed);
  EXPECT_EQ(got.u_lo, want.u_lo);
  EXPECT_EQ(got.u_hi, want.u_hi);
  EXPECT_EQ(got.speedup_breakpoints, want.speedup_breakpoints);
  EXPECT_EQ(got.reset_breakpoints, want.reset_breakpoints);
  EXPECT_EQ(got.fused_breakpoints, want.fused_breakpoints);
  EXPECT_EQ(got.lo_breakpoints, want.lo_breakpoints);
  // And the round trip is a fixed point at the byte level.
  EXPECT_EQ(serialize_report(got), line);
}

TEST(ReportSerializationTest, ParseRejectsMalformedLines) {
  EXPECT_FALSE(parse_report("").is_ok());
  EXPECT_FALSE(parse_report("1,2,3").is_ok());
  std::string line = serialize_report(sample_report());
  EXPECT_FALSE(parse_report(line + ",extra").is_ok());
  line[0] = 'x';
  EXPECT_FALSE(parse_report(line).is_ok());
  // Bool fields only accept 0/1.
  std::string bad = serialize_report(sample_report());
  const std::size_t comma = bad.find(',');
  bad.replace(comma + 1, 1, "2");  // s_min_exact = "2"
  EXPECT_FALSE(parse_report(bad).is_ok());
}

TEST(CacheKeyTest, IgnoresNamingOrderAndPriority) {
  AnalysisRequest a;
  a.set = TaskSet({McTask::hi("x", 1, 2, 4, 8, 8), McTask::lo("y", 2, 6, 10, 10, 10)});
  a.speed = 2.0;
  a.priority = Criticality::LO;

  AnalysisRequest b;  // renamed, reordered, different priority
  b.set = TaskSet({McTask::lo("p", 2, 6, 10, 10, 10), McTask::hi("q", 1, 2, 4, 8, 8)});
  b.speed = 2.0;
  b.priority = Criticality::HI;

  EXPECT_EQ(cache_key(a), cache_key(b));
}

TEST(CacheKeyTest, DistinguishesSpeedPartsAndLimits) {
  AnalysisRequest base;
  base.set = paper_set();
  base.speed = 2.0;
  const std::string key = cache_key(base);

  AnalysisRequest speed = base;
  speed.speed = 2.5;
  EXPECT_NE(cache_key(speed), key);

  AnalysisRequest parts = base;
  parts.parts.reset = false;
  EXPECT_NE(cache_key(parts), key);

  AnalysisRequest degraded = base;
  degraded.limits = AnalysisLimits::degraded();
  EXPECT_NE(cache_key(degraded), key)
      << "degraded results must never be served to full-exactness requests";
}

TEST(ResultCacheTest, LruEvictsLeastRecentlyUsed) {
  ResultCache::Options options;
  options.capacity = 2;
  Expected<ResultCache> cache_or = ResultCache::open(options);
  ASSERT_TRUE(cache_or.is_ok());
  ResultCache& cache = cache_or.value();

  for (const char* key : {"k1", "k2"}) {
    const ResultCache::Lookup lookup = cache.lookup_or_begin(key);
    ASSERT_TRUE(lookup.leader);
    ASSERT_TRUE(cache.publish(key, std::string("v-") + key).is_ok());
  }
  // Touch k1 so k2 is the eviction victim.
  EXPECT_TRUE(cache.lookup_or_begin("k1").hit);
  ASSERT_TRUE(cache.lookup_or_begin("k3").leader);
  ASSERT_TRUE(cache.publish("k3", "v-k3").is_ok());

  EXPECT_TRUE(cache.lookup_or_begin("k1").hit);
  EXPECT_TRUE(cache.lookup_or_begin("k3").hit);
  const ResultCache::Lookup evicted = cache.lookup_or_begin("k2");
  EXPECT_FALSE(evicted.hit);
  EXPECT_TRUE(evicted.leader);
  cache.abandon("k2");

  const ResultCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.entries, 2u);
}

TEST(ResultCacheTest, SingleFlightCoalescesConcurrentMisses) {
  Expected<ResultCache> cache_or = ResultCache::open({});
  ASSERT_TRUE(cache_or.is_ok());
  ResultCache& cache = cache_or.value();

  const ResultCache::Lookup leader = cache.lookup_or_begin("key");
  ASSERT_TRUE(leader.leader);

  constexpr int kWaiters = 4;
  std::atomic<int> hits{0};
  std::vector<std::thread> waiters;
  waiters.reserve(kWaiters);
  for (int i = 0; i < kWaiters; ++i) {
    waiters.emplace_back([&cache, &hits] {
      const ResultCache::Lookup lookup = cache.lookup_or_begin("key");
      if (lookup.hit && lookup.value == "value") ++hits;
    });
  }
  // The waiters block until the leader publishes; publish exactly once.
  ASSERT_TRUE(cache.publish("key", "value").is_ok());
  for (std::thread& t : waiters) t.join();

  EXPECT_EQ(hits.load(), kWaiters);
  const ResultCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.misses, 1u) << "exactly one computation for the burst";
  EXPECT_EQ(stats.coalesced + stats.hits, static_cast<std::uint64_t>(kWaiters));
}

TEST(ResultCacheTest, AbandonPromotesExactlyOneWaiterToLeader) {
  Expected<ResultCache> cache_or = ResultCache::open({});
  ASSERT_TRUE(cache_or.is_ok());
  ResultCache& cache = cache_or.value();

  ASSERT_TRUE(cache.lookup_or_begin("key").leader);

  std::atomic<int> leaders{0}, waiter_hits{0};
  std::vector<std::thread> waiters;
  for (int i = 0; i < 3; ++i) {
    waiters.emplace_back([&cache, &leaders, &waiter_hits] {
      const ResultCache::Lookup lookup = cache.lookup_or_begin("key");
      if (lookup.leader) {
        ++leaders;
        ASSERT_TRUE(cache.publish("key", "recovered").is_ok());
      } else if (lookup.hit) {
        EXPECT_EQ(lookup.value, "recovered");
        ++waiter_hits;
      }
    });
  }
  cache.abandon("key");  // the original computation failed
  for (std::thread& t : waiters) t.join();

  EXPECT_EQ(leaders.load(), 1) << "exactly one waiter retries the computation";
  EXPECT_EQ(waiter_hits.load(), 2);
}

class CacheWalTest : public testing::Test {
 protected:
  std::string wal_path() const {
    return testing::TempDir() + "/cache_wal_" +
           testing::UnitTest::GetInstance()->current_test_info()->name() + ".jsonl";
  }
  void SetUp() override { std::remove(wal_path().c_str()); }
};

TEST_F(CacheWalTest, WarmStartReplaysPublishedEntriesByteIdentically) {
  ResultCache::Options options;
  options.journal_path = wal_path();
  const std::string value = serialize_report(sample_report());
  {
    Expected<ResultCache> cache_or = ResultCache::open(options);
    ASSERT_TRUE(cache_or.is_ok()) << cache_or.status().message();
    ResultCache& cache = cache_or.value();
    ASSERT_TRUE(cache.lookup_or_begin("req-a").leader);
    ASSERT_TRUE(cache.publish("req-a", value).is_ok());
    ASSERT_TRUE(cache.lookup_or_begin("req-b").leader);
    ASSERT_TRUE(cache.publish("req-b", "other").is_ok());
  }  // destruction = crash boundary: the WAL is all that survives

  Expected<ResultCache> warm_or = ResultCache::open(options);
  ASSERT_TRUE(warm_or.is_ok()) << warm_or.status().message();
  ResultCache& warm = warm_or.value();
  EXPECT_EQ(warm.stats().warm_entries, 2u);
  const ResultCache::Lookup a = warm.lookup_or_begin("req-a");
  ASSERT_TRUE(a.hit);
  EXPECT_EQ(a.value, value) << "warm-started value must be byte-identical";
  EXPECT_TRUE(warm.lookup_or_begin("req-b").hit);
}

TEST_F(CacheWalTest, ReplayKeepsOnlyLiveEntriesAndCompactsOversizedWals) {
  ResultCache::Options options;
  options.journal_path = wal_path();
  options.capacity = 3;
  {
    Expected<ResultCache> cache_or = ResultCache::open(options);
    ASSERT_TRUE(cache_or.is_ok());
    ResultCache& cache = cache_or.value();
    // 10 publishes against capacity 3: the WAL holds every append (> 2x
    // capacity), the LRU only the last three.
    for (int i = 0; i < 10; ++i) {
      const std::string key = "k" + std::to_string(i);
      ASSERT_TRUE(cache.lookup_or_begin(key).leader);
      ASSERT_TRUE(cache.publish(key, "v" + std::to_string(i)).is_ok());
    }
  }

  {
    Expected<ResultCache> warm_or = ResultCache::open(options);
    ASSERT_TRUE(warm_or.is_ok()) << warm_or.status().message();
    ResultCache& warm = warm_or.value();
    EXPECT_EQ(warm.stats().warm_entries, 3u) << "replay respects the LRU bound";
    EXPECT_TRUE(warm.lookup_or_begin("k9").hit);
    EXPECT_TRUE(warm.lookup_or_begin("k8").hit);
    EXPECT_TRUE(warm.lookup_or_begin("k7").hit);
    const ResultCache::Lookup old = warm.lookup_or_begin("k0");
    EXPECT_FALSE(old.hit);
    warm.abandon("k0");
  }  // this open compacted the WAL down to the live entries

  // After compaction a further reopen still warm-starts the same entries.
  Expected<ResultCache> again_or = ResultCache::open(options);
  ASSERT_TRUE(again_or.is_ok()) << again_or.status().message();
  EXPECT_EQ(again_or.value().stats().warm_entries, 3u);
  EXPECT_TRUE(again_or.value().lookup_or_begin("k9").hit);
}

TEST_F(CacheWalTest, CompactionIsByteIdenticalAcrossRuns) {
  // The determinism gate for the cache: compaction decides which entries
  // survive and in what WAL order by walking the recency list, never a
  // hash-ordered index, so two opens of the same oversized journal must
  // write byte-identical compacted WALs (docs/static-analysis.md,
  // "Determinism discipline").
  ResultCache::Options options;
  options.journal_path = wal_path();
  options.capacity = 3;
  {
    Expected<ResultCache> cache_or = ResultCache::open(options);
    ASSERT_TRUE(cache_or.is_ok());
    ResultCache& cache = cache_or.value();
    for (int i = 0; i < 12; ++i) {
      const std::string key = "k" + std::to_string(i % 5);  // re-publishes mix recency
      ASSERT_TRUE(cache.lookup_or_begin(key).leader || true);
      ASSERT_TRUE(cache.publish(key, "v" + std::to_string(i)).is_ok());
    }
  }

  const auto read_bytes = [](const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
  };
  const std::string twin_path = wal_path() + ".twin";
  const std::string oversized = read_bytes(options.journal_path);
  ASSERT_FALSE(oversized.empty());
  {
    std::ofstream out(twin_path, std::ios::binary);
    out << oversized;
  }

  // Open both copies: each replay sees > 2x capacity records and compacts.
  { ASSERT_TRUE(ResultCache::open(options).is_ok()); }
  ResultCache::Options twin_options = options;
  twin_options.journal_path = twin_path;
  { ASSERT_TRUE(ResultCache::open(twin_options).is_ok()); }

  const std::string compacted = read_bytes(options.journal_path);
  const std::string twin_compacted = read_bytes(twin_path);
  EXPECT_LT(compacted.size(), oversized.size()) << "compaction did not trigger";
  EXPECT_EQ(compacted, twin_compacted)
      << "compacted WALs must not depend on anything but the recency list";
  std::remove(twin_path.c_str());
}

TEST_F(CacheWalTest, CorruptWalIsDiscardedNotFatal) {
  ResultCache::Options options;
  options.journal_path = wal_path();
  {
    std::FILE* f = std::fopen(options.journal_path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs("this is not a journal\n", f);
    std::fclose(f);
  }
  Expected<ResultCache> cache_or = ResultCache::open(options);
  ASSERT_TRUE(cache_or.is_ok()) << "a corrupt WAL costs the warm start, not the server";
  EXPECT_EQ(cache_or.value().stats().warm_entries, 0u);
  // And the fresh WAL works.
  ASSERT_TRUE(cache_or.value().lookup_or_begin("k").leader);
  EXPECT_TRUE(cache_or.value().publish("k", "v").is_ok());
}

}  // namespace
}  // namespace rbs::service

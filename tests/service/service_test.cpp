// Behavioural tests for the analysis server: criticality-aware admission,
// deterministic shed traces, degraded HI service under overload, retry and
// deadline handling, graceful stop, and a TSan-friendly burst soak.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <future>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/analysis.hpp"
#include "core/task.hpp"
#include "service/admission.hpp"
#include "service/server.hpp"

namespace rbs::service {
namespace {

/// Small distinct-by-index task sets: always analyzable, never degenerate.
TaskSet indexed_set(std::size_t index) {
  const Ticks period = static_cast<Ticks>(20 + (index % 16));
  return TaskSet({McTask::hi("h", 1, 2, 4, 8, 8),
                  McTask::lo("l", 2, period / 2, period, period, period)});
}

AnalysisRequest make_request(std::size_t index, Criticality priority) {
  AnalysisRequest request;
  request.set = indexed_set(index);
  request.speed = 2.0;
  request.priority = priority;
  return request;
}

/// The first 30% of every 100-request window is HI (matches service_load).
Criticality striped_priority(std::size_t index) {
  return index % 100 < 30 ? Criticality::HI : Criticality::LO;
}

struct TraceResult {
  std::string stats_row;
  std::vector<Response> responses;
  std::vector<Criticality> priorities;
};

/// Feeds a whole arrival trace into a paused single-worker server, then
/// releases and drains it: admission sees one deterministic depth sequence.
TraceResult run_paused_trace(std::size_t n, ServerOptions options) {
  options.workers = 1;
  options.start_paused = true;
  if (options.queue_capacity < n + 1) options.queue_capacity = n + 1;
  Expected<AnalysisServer> server_or = AnalysisServer::open(std::move(options));
  EXPECT_TRUE(server_or.is_ok()) << server_or.status().message();
  AnalysisServer& server = server_or.value();

  std::vector<std::future<Response>> futures;
  TraceResult result;
  futures.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const Criticality priority = striped_priority(i);
    result.priorities.push_back(priority);
    futures.push_back(server.submit(i, make_request(i, priority)));
  }
  server.start();
  server.drain();
  for (std::future<Response>& f : futures) result.responses.push_back(f.get());
  result.stats_row = server.stats().csv_row();
  return result;
}

ServerOptions overload_options() {
  ServerOptions options;
  options.admission.hi_enter_depth = 40;
  options.admission.lo_exit_depth = 4;
  return options;
}

TEST(ServiceDeterminismTest, SameTraceYieldsByteIdenticalStats) {
  const TraceResult first = run_paused_trace(120, overload_options());
  const TraceResult second = run_paused_trace(120, overload_options());
  EXPECT_EQ(first.stats_row, second.stats_row)
      << "counters must depend only on the trace, never on timing";
  // And the per-request verdicts agree, not just the aggregates.
  ASSERT_EQ(first.responses.size(), second.responses.size());
  for (std::size_t i = 0; i < first.responses.size(); ++i) {
    EXPECT_EQ(first.responses[i].status.is_ok(), second.responses[i].status.is_ok()) << i;
    EXPECT_EQ(first.responses[i].serialized, second.responses[i].serialized) << i;
    EXPECT_EQ(first.responses[i].degraded, second.responses[i].degraded) << i;
  }
}

TEST(ServiceOverloadTest, ShedsOnlyLoServesHiDegradedAndRecovers) {
  const TraceResult result = run_paused_trace(120, overload_options());

  std::uint64_t hi_shed = 0, lo_shed = 0, hi_degraded = 0;
  for (std::size_t i = 0; i < result.responses.size(); ++i) {
    const Response& response = result.responses[i];
    if (response.status.is_overloaded()) {
      if (result.priorities[i] == Criticality::HI) ++hi_shed;
      else ++lo_shed;
    } else {
      ASSERT_TRUE(response.status.is_ok()) << response.status.message();
      if (response.degraded) {
        EXPECT_EQ(result.priorities[i], Criticality::HI)
            << "only HI requests are served degraded";
        ++hi_degraded;
      }
    }
  }
  EXPECT_EQ(hi_shed, 0u) << "a HI request must NEVER be shed";
  EXPECT_GE(lo_shed, 1u) << "the burst must have shed LO traffic";
  EXPECT_GE(hi_degraded, 1u) << "HI admitted during HI mode is served degraded";

  // The stats row ends with the post-drain mode: recovered to LO.
  EXPECT_NE(result.stats_row.find(",LO"), std::string::npos) << result.stats_row;
}

TEST(ServiceOverloadTest, HiSubmitBlocksForSpaceInsteadOfDropping) {
  // Queue capacity 1 and a slow worker: the second HI submit must block
  // until the worker frees a slot, and both requests must complete.
  ServerOptions options;
  options.workers = 1;
  options.queue_capacity = 1;
  options.admission.hi_enter_depth = 100;  // shedding is not under test here
  options.fault_hook = [](const AnalysisRequest&, std::uint32_t) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  };
  Expected<AnalysisServer> server_or = AnalysisServer::open(std::move(options));
  ASSERT_TRUE(server_or.is_ok());
  AnalysisServer& server = server_or.value();

  std::vector<std::future<Response>> futures;
  for (std::size_t i = 0; i < 4; ++i)
    futures.push_back(server.submit(i, make_request(i, Criticality::HI)));
  server.drain();
  for (std::future<Response>& f : futures) {
    const Response response = f.get();
    EXPECT_TRUE(response.status.is_ok()) << response.status.message();
  }
  EXPECT_EQ(server.stats().completed, 4u);
}

TEST(ServiceRetryTest, TransientFaultsAreRetriedWithCap) {
  ServerOptions options;
  options.workers = 1;
  options.max_attempts = 3;
  std::atomic<std::uint32_t> calls{0};
  options.fault_hook = [&calls](const AnalysisRequest&, std::uint32_t attempt) {
    ++calls;
    if (attempt < 3) throw std::runtime_error("transient");
  };
  Expected<AnalysisServer> server_or = AnalysisServer::open(std::move(options));
  ASSERT_TRUE(server_or.is_ok());
  AnalysisServer& server = server_or.value();

  const Response response = server.submit(0, make_request(0, Criticality::LO)).get();
  EXPECT_TRUE(response.status.is_ok()) << response.status.message();
  EXPECT_EQ(response.attempts, 3u);
  EXPECT_EQ(calls.load(), 3u);
  const ServiceStats stats = server.stats();
  EXPECT_EQ(stats.completed, 1u);
  EXPECT_EQ(stats.retried, 2u);
}

TEST(ServiceRetryTest, ExhaustedAttemptsFailWithTypedError) {
  ServerOptions options;
  options.workers = 1;
  options.max_attempts = 2;
  options.fault_hook = [](const AnalysisRequest&, std::uint32_t) {
    throw std::runtime_error("permanent fault");
  };
  Expected<AnalysisServer> server_or = AnalysisServer::open(std::move(options));
  ASSERT_TRUE(server_or.is_ok());
  AnalysisServer& server = server_or.value();

  const Response response = server.submit(0, make_request(0, Criticality::HI)).get();
  ASSERT_FALSE(response.status.is_ok());
  EXPECT_FALSE(response.status.is_overloaded()) << "failure is not overload";
  EXPECT_NE(response.status.message().find("2 attempt(s)"), std::string::npos)
      << response.status.message();
  EXPECT_NE(response.status.message().find("permanent fault"), std::string::npos);
  EXPECT_EQ(server.stats().failed, 1u);
}

TEST(ServiceDeadlineTest, QueuedRequestsPastDeadlineGetTypedExpiry) {
  ServerOptions options;
  options.workers = 1;
  options.soft_deadline_s = 0.05;
  // The first request occupies the only worker well past everyone's
  // deadline; the queued ones must expire, not wait forever.
  options.fault_hook = [](const AnalysisRequest&, std::uint32_t) {
    std::this_thread::sleep_for(std::chrono::milliseconds(400));
  };
  Expected<AnalysisServer> server_or = AnalysisServer::open(std::move(options));
  ASSERT_TRUE(server_or.is_ok());
  AnalysisServer& server = server_or.value();

  std::vector<std::future<Response>> futures;
  for (std::size_t i = 0; i < 4; ++i)
    futures.push_back(server.submit(i, make_request(i, Criticality::LO)));
  server.drain();

  std::uint64_t expired = 0;
  for (std::future<Response>& f : futures) {
    const Response response = f.get();
    if (!response.status.is_ok()) {
      EXPECT_NE(response.status.message().find("deadline"), std::string::npos)
          << response.status.message();
      ++expired;
    }
  }
  EXPECT_GE(expired, 1u);
  EXPECT_EQ(server.stats().deadline_expired, expired);
}

TEST(ServiceStopTest, StopFlagDrainsQueuedRequestsWithStopVerdict) {
  std::atomic<bool> stop{false};
  ServerOptions options;
  options.workers = 1;
  options.start_paused = true;  // nothing is served before the stop lands
  options.stop = &stop;
  Expected<AnalysisServer> server_or = AnalysisServer::open(std::move(options));
  ASSERT_TRUE(server_or.is_ok());
  AnalysisServer& server = server_or.value();

  std::vector<std::future<Response>> futures;
  for (std::size_t i = 0; i < 5; ++i)
    futures.push_back(server.submit(i, make_request(i, Criticality::HI)));
  stop.store(true);

  for (std::future<Response>& f : futures) {
    const Response response = f.get();  // resolved by the drain, no start()
    ASSERT_FALSE(response.status.is_ok());
    EXPECT_NE(response.status.message().find("server stopping"), std::string::npos)
        << response.status.message();
  }
  EXPECT_EQ(server.stats().stopped, 5u);

  // Submissions after the stop are refused immediately.
  const Response late = server.submit(99, make_request(99, Criticality::HI)).get();
  EXPECT_FALSE(late.status.is_ok());
  EXPECT_NE(late.status.message().find("refused"), std::string::npos);
}

TEST(ServiceCacheTest, IdenticalRequestsCoalesceToOneAnalysis) {
  ServerOptions options;
  options.workers = 4;
  std::atomic<std::uint32_t> analyses{0};
  options.fault_hook = [&analyses](const AnalysisRequest&, std::uint32_t) {
    ++analyses;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  };
  Expected<AnalysisServer> server_or = AnalysisServer::open(std::move(options));
  ASSERT_TRUE(server_or.is_ok());
  AnalysisServer& server = server_or.value();

  // 8 byte-identical requests racing through 4 workers: single-flight means
  // exactly one analysis; everyone gets the same serialized report.
  std::vector<std::future<Response>> futures;
  for (std::size_t i = 0; i < 8; ++i)
    futures.push_back(server.submit(i, make_request(0, Criticality::HI)));
  std::string serialized;
  for (std::future<Response>& f : futures) {
    const Response response = f.get();
    ASSERT_TRUE(response.status.is_ok()) << response.status.message();
    if (serialized.empty()) serialized = response.serialized;
    EXPECT_EQ(response.serialized, serialized);
  }
  EXPECT_EQ(analyses.load(), 1u) << "the burst must cost one analysis";
  const ServiceStats stats = server.stats();
  EXPECT_EQ(stats.cache_misses, 1u);
  EXPECT_EQ(stats.cache_hits + stats.coalesced, 7u);
}

// The soak: a live multi-worker burst with transient faults. Run under TSan
// in CI (the `service` job); the assertion here is the conservation law.
TEST(ServiceSoakTest, BurstLoadConservesEveryRequest) {
  ServerOptions options;
  options.workers = 4;
  options.queue_capacity = 16;  // small on purpose: full-queue paths fire
  options.admission.hi_enter_depth = 12;
  options.admission.lo_exit_depth = 2;
  options.max_attempts = 2;
  std::atomic<std::uint32_t> ticks{0};
  options.fault_hook = [&ticks](const AnalysisRequest&, std::uint32_t attempt) {
    if (attempt == 1 && ++ticks % 17 == 0) throw std::runtime_error("soak fault");
  };
  Expected<AnalysisServer> server_or = AnalysisServer::open(std::move(options));
  ASSERT_TRUE(server_or.is_ok());
  AnalysisServer& server = server_or.value();

  constexpr std::size_t kRequests = 300;
  std::vector<std::future<Response>> futures;
  std::vector<Criticality> priorities;
  futures.reserve(kRequests);
  for (std::size_t i = 0; i < kRequests; ++i) {
    const Criticality priority = striped_priority(i);
    priorities.push_back(priority);
    futures.push_back(server.submit(i, make_request(i % 40, priority)));
  }
  server.drain();

  std::uint64_t hi_shed = 0;
  for (std::size_t i = 0; i < kRequests; ++i) {
    const Response response = futures[i].get();
    if (response.status.is_overloaded() && priorities[i] == Criticality::HI) ++hi_shed;
  }
  EXPECT_EQ(hi_shed, 0u);

  const ServiceStats stats = server.stats();
  EXPECT_EQ(stats.submitted, kRequests);
  EXPECT_EQ(stats.completed + stats.failed + stats.shed_lo + stats.deadline_expired +
                stats.stopped,
            stats.submitted)
      << "conservation law violated: " << stats.csv_row();
}

TEST(AdmissionControllerTest, HysteresisBetweenEnterAndExitDepths) {
  AdmissionOptions options;
  options.hi_enter_depth = 10;
  options.lo_exit_depth = 3;
  AdmissionController admission(options);

  EXPECT_EQ(admission.mode(), ServiceMode::kLo);
  EXPECT_TRUE(admission.admit(Criticality::LO, 9).admit);

  // Crossing the high-water mark flips to HI: LO shed, HI degraded.
  const AdmissionDecision at_threshold = admission.admit(Criticality::LO, 10);
  EXPECT_FALSE(at_threshold.admit);
  EXPECT_EQ(at_threshold.mode, ServiceMode::kHi);
  const AdmissionDecision hi = admission.admit(Criticality::HI, 11);
  EXPECT_TRUE(hi.admit);
  EXPECT_TRUE(hi.degrade);

  // Draining to between the marks keeps HI (hysteresis)...
  admission.observe_depth(5);
  EXPECT_EQ(admission.mode(), ServiceMode::kHi);
  // ...and reaching the low-water mark recovers LO.
  admission.observe_depth(3);
  EXPECT_EQ(admission.mode(), ServiceMode::kLo);
  EXPECT_EQ(admission.switches_to_hi(), 1u);
  EXPECT_EQ(admission.switches_to_lo(), 1u);
  const AdmissionDecision after = admission.admit(Criticality::LO, 0);
  EXPECT_TRUE(after.admit);
  EXPECT_FALSE(after.degrade);
}

TEST(AdmissionControllerTest, CoreDeficitForcesAndPinsHiMode) {
  AdmissionOptions options;
  options.hi_enter_depth = 10;
  options.lo_exit_depth = 3;
  AdmissionController admission(options);

  // A shrunken pool is an overload trigger on its own: no backlog required.
  admission.observe_core_pool(3, 4);
  EXPECT_EQ(admission.mode(), ServiceMode::kHi);
  EXPECT_TRUE(admission.core_deficit());
  EXPECT_EQ(admission.switches_to_hi(), 1u);

  // LO traffic is shed and HI degraded exactly as under queue overload.
  EXPECT_FALSE(admission.admit(Criticality::LO, 0).admit);
  const AdmissionDecision hi = admission.admit(Criticality::HI, 0);
  EXPECT_TRUE(hi.admit);
  EXPECT_TRUE(hi.degrade);

  // A fully drained backlog does NOT recover while the deficit persists.
  admission.observe_depth(0);
  EXPECT_EQ(admission.mode(), ServiceMode::kHi);
  EXPECT_EQ(admission.switches_to_lo(), 0u);

  // Restoring the pool alone does not switch back either: recovery still
  // drains through the depth hysteresis.
  admission.observe_core_pool(4, 4);
  EXPECT_FALSE(admission.core_deficit());
  EXPECT_EQ(admission.mode(), ServiceMode::kHi);
  admission.observe_depth(options.lo_exit_depth);
  EXPECT_EQ(admission.mode(), ServiceMode::kLo);
  EXPECT_EQ(admission.switches_to_lo(), 1u);
}

TEST(AdmissionControllerTest, CoreDeficitReportIsIdempotent) {
  AdmissionController admission(AdmissionOptions{});
  admission.observe_core_pool(1, 2);
  admission.observe_core_pool(1, 2);  // repeated heartbeat, same deficit
  EXPECT_EQ(admission.switches_to_hi(), 1u) << "no double-counted switch";
  // A pool report that says "nominal" while already in LO mode is a no-op.
  admission.observe_core_pool(2, 2);
  admission.observe_depth(0);
  admission.observe_core_pool(2, 2);
  EXPECT_EQ(admission.mode(), ServiceMode::kLo);
  EXPECT_EQ(admission.switches_to_hi(), 1u);
}

TEST(ServiceOverloadTest, ServerCorePoolReportShedsLoUntilRestoredAndDrained) {
  ServerOptions options;
  options.workers = 1;
  options.start_paused = true;
  options.admission.hi_enter_depth = 100;  // depth alone never triggers here
  options.admission.lo_exit_depth = 0;
  Expected<AnalysisServer> server_or = AnalysisServer::open(std::move(options));
  ASSERT_TRUE(server_or.is_ok());
  AnalysisServer& server = server_or.value();

  server.observe_core_pool(1, 2);
  EXPECT_TRUE(server.core_deficit());
  EXPECT_EQ(server.mode(), ServiceMode::kHi);

  std::vector<std::future<Response>> futures;
  futures.push_back(server.submit(0, make_request(0, Criticality::LO)));
  futures.push_back(server.submit(1, make_request(1, Criticality::HI)));
  server.start();
  server.drain();

  const Response lo = futures[0].get();
  EXPECT_TRUE(lo.status.is_overloaded()) << lo.status.message();
  const Response hi = futures[1].get();
  ASSERT_TRUE(hi.status.is_ok()) << hi.status.message();
  EXPECT_TRUE(hi.degraded);

  // Deficit outlives the drained queue: still HI after restoration, until a
  // worker next observes the drained backlog (here: serving one HI request).
  EXPECT_EQ(server.mode(), ServiceMode::kHi);
  server.observe_core_pool(2, 2);
  EXPECT_FALSE(server.core_deficit());
  EXPECT_EQ(server.mode(), ServiceMode::kHi);
  const Response bridge = server.submit(2, make_request(2, Criticality::HI)).get();
  ASSERT_TRUE(bridge.status.is_ok()) << bridge.status.message();
  server.drain();
  EXPECT_EQ(server.mode(), ServiceMode::kLo);
  const Response after = server.submit(3, make_request(3, Criticality::LO)).get();
  EXPECT_TRUE(after.status.is_ok()) << after.status.message();
  EXPECT_FALSE(after.degraded);
}

TEST(AdmissionControllerTest, DegenerateThresholdsAreClamped) {
  AdmissionOptions options;
  options.hi_enter_depth = 0;  // clamped to 1
  options.lo_exit_depth = 99;  // clamped below hi_enter_depth
  AdmissionController admission(options);
  // Depth 1 >= clamped enter threshold: HI mode.
  EXPECT_FALSE(admission.admit(Criticality::LO, 1).admit);
  // Clamped exit (0) still recovers on a fully drained queue.
  admission.observe_depth(0);
  EXPECT_EQ(admission.mode(), ServiceMode::kLo);
}

}  // namespace
}  // namespace rbs::service
